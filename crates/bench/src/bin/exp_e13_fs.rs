//! E13 — §7: the embedded media file system.
//!
//! (a) Streaming cost vs allocation policy: contiguous vs churned vs
//! deliberately scattered chains, priced with the seek model. (b) Foreign
//! CD/MP3 trees in four authoring styles must enumerate completely.

use mediafs::foreign::{generate_tree, scan_tracks, TreeStyle};
use mediafs::fs::{AllocPolicy, MediaFs};
use mmbench::banner;
use mmsoc::report::{count, f, Table};

fn main() {
    banner(
        "E13: media file systems (§7)",
        "large file sizes and non-sequential allocation of blocks are \
         unavoidable; foreign CD/MP3 trees must be handled regardless of \
         directory structure or names",
    );

    // (a) Fragmentation pricing: stream a 2 MB recording.
    let file = vec![0u8; 2 * 1024 * 1024];
    let mut table = Table::new(vec![
        "layout",
        "fragmentation",
        "seeks",
        "modelled read time (ms)",
    ]);
    // Contiguous.
    let mut seq = MediaFs::new(16_384, 512, AllocPolicy::FirstFit);
    seq.create("/rec.ts", &file).expect("create");
    seq.reset_io_stats();
    seq.read("/rec.ts").expect("read");
    table.row(vec![
        "contiguous (first-fit, fresh disk)".to_string(),
        f(seq.fragmentation("/rec.ts").expect("frag"), 3),
        count(seq.io_stats().seeks),
        f(seq.io_stats().time_ms(8.0, 0.05), 1),
    ]);
    // Churned: fill/delete cycles then allocate.
    let mut churn = MediaFs::new(16_384, 512, AllocPolicy::FirstFit);
    for i in 0..24 {
        churn
            .create(&format!("/t{i}"), &vec![0u8; 512 * 256])
            .expect("create");
    }
    for i in (0..24).step_by(2) {
        churn.delete(&format!("/t{i}")).expect("delete");
    }
    churn.create("/rec.ts", &file).expect("create");
    churn.reset_io_stats();
    churn.read("/rec.ts").expect("read");
    table.row(vec![
        "churned (first-fit after deletes)".to_string(),
        f(churn.fragmentation("/rec.ts").expect("frag"), 3),
        count(churn.io_stats().seeks),
        f(churn.io_stats().time_ms(8.0, 0.05), 1),
    ]);
    // Fully scattered.
    let mut scat = MediaFs::new(16_384, 512, AllocPolicy::Scatter(13));
    scat.create("/rec.ts", &file).expect("create");
    scat.reset_io_stats();
    scat.read("/rec.ts").expect("read");
    table.row(vec![
        "scattered (worst case)".to_string(),
        f(scat.fragmentation("/rec.ts").expect("frag"), 3),
        count(scat.io_stats().seeks),
        f(scat.io_stats().time_ms(8.0, 0.05), 1),
    ]);
    println!("{table}");

    // (b) Foreign trees.
    let mut table = Table::new(vec![
        "authoring style",
        "tracks written",
        "tracks found",
        "complete?",
    ]);
    for style in [
        TreeStyle::Dos83,
        TreeStyle::LongNames,
        TreeStyle::DeepNested,
        TreeStyle::FlatDump,
    ] {
        let mut fs = MediaFs::new(8_192, 512, AllocPolicy::FirstFit);
        let written = generate_tree(&mut fs, style, 40, 14).expect("generate");
        let found = scan_tracks(&fs, "/").expect("scan");
        table.row(vec![
            style.to_string(),
            written.len().to_string(),
            found.len().to_string(),
            if found.len() == written.len() {
                "yes".to_string()
            } else {
                "NO (UNEXPECTED)".into()
            },
        ]);
    }
    println!("{table}");
    println!("expected shape: seek count (and modelled time) grows with fragmentation; every foreign style enumerates completely.");
}
