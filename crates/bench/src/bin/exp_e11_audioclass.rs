//! E11 — §5: audio content categorization.
//!
//! Trains the nearest-centroid classifier on one set of
//! speech/music/noise clips and evaluates on held-out seeds: a confusion
//! matrix and overall accuracy, which must beat chance (1/3)
//! comfortably.

use analysis::classify::{AudioClass, Classifier};
use mmbench::banner;
use mmsoc::report::{f, Table};
use signal::gen::SignalGen;

const FS: f64 = 8000.0;
const WIN: usize = 512;

fn corpus(seed: u64, len: usize) -> [(AudioClass, Vec<f64>); 3] {
    let mut g = SignalGen::new(seed);
    let (speech, _) = g.speech_sentence(FS, len);
    let music = g.music(261.0, FS, len);
    let noise = g.white_noise(0.4, len);
    [
        (AudioClass::Speech, speech),
        (AudioClass::Music, music),
        (AudioClass::Noise, noise),
    ]
}

fn main() {
    banner(
        "E11: audio categorization (§5)",
        "audio content analysis categorizes material (e.g. music) from salient \
         features, enabling search and recommendation",
    );

    let train = corpus(100, 16_384);
    let train_refs: Vec<(AudioClass, &[f64])> =
        train.iter().map(|(c, s)| (*c, s.as_slice())).collect();
    let clf = Classifier::train(WIN, &train_refs).expect("training data is non-empty");

    // Confusion matrix over held-out seeds.
    let classes = [AudioClass::Speech, AudioClass::Music, AudioClass::Noise];
    let mut confusion = [[0usize; 3]; 3];
    let mut correct = 0;
    let mut total = 0;
    for seed in 200..230 {
        for (truth, clip) in corpus(seed, 8192) {
            let predicted = clf.classify(&clip).expect("clip long enough");
            let ti = classes
                .iter()
                .position(|c| *c == truth)
                .expect("known class");
            let pi = classes
                .iter()
                .position(|c| *c == predicted)
                .expect("known class");
            confusion[ti][pi] += 1;
            total += 1;
            if ti == pi {
                correct += 1;
            }
        }
    }

    let mut table = Table::new(vec!["truth \\ predicted", "speech", "music", "noise"]);
    for (ti, truth) in classes.iter().enumerate() {
        table.row(vec![
            truth.to_string(),
            confusion[ti][0].to_string(),
            confusion[ti][1].to_string(),
            confusion[ti][2].to_string(),
        ]);
    }
    println!("{table}");
    let acc = correct as f64 / total as f64;
    println!(
        "accuracy over {} held-out clips: {} (chance = 0.333) — {}",
        total,
        f(acc, 3),
        if acc > 0.7 {
            "well above chance (matches §5)"
        } else {
            "too weak (UNEXPECTED)"
        }
    );
}
