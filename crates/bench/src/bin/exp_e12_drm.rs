//! E12 — §6: the DRM rights architecture, all four right forms.
//!
//! Exercises every right form the paper lists, tamper detection on sealed
//! licenses, the analog-only protected output path, and the decryption
//! overhead relative to plain playback.

use std::time::Instant;

use drm::license::{DeviceId, Right, TitleId};
use drm::playback::{protected_play, LicenseAuthority, OutputPolicy, PlaybackDevice};
use drm::License;
use mmbench::banner;
use mmsoc::report::{f, Table};

fn main() {
    banner(
        "E12: digital rights management (§6)",
        "rights take four forms (play, play count, device set, time window); \
         playback must not be easily subverted",
    );

    let mut authority = LicenseAuthority::new(b"studio-secret".to_vec());
    let title = TitleId(2005);
    authority.register_title(title);
    let content = vec![0xA5u8; 200_000];

    let mut table = Table::new(vec!["right form", "scenario", "outcome"]);
    // 1. Play right.
    {
        let mut dev = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
        let sealed = authority.issue(title, vec![Right::Play]);
        dev.store_mut()
            .install(&sealed, authority.verification_key())
            .expect("install");
        let ok = protected_play(&mut dev, &authority, title, &content, 1, 0).is_ok();
        table.row(vec![
            "play title".into(),
            "licensed device plays".to_string(),
            if ok {
                "GRANTED".into()
            } else {
                "refused (UNEXPECTED)".to_string()
            },
        ]);
    }
    // 2. Play count.
    {
        let mut dev = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
        let sealed = authority.issue(title, vec![Right::PlayCount(2)]);
        dev.store_mut()
            .install(&sealed, authority.verification_key())
            .expect("install");
        let mut plays = 0;
        while protected_play(&mut dev, &authority, title, &content, 1, 0).is_ok() {
            plays += 1;
            assert!(plays < 10, "runaway");
        }
        table.row(vec![
            "play count (2)".into(),
            format!("plays granted before refusal: {plays}"),
            if plays == 2 {
                "ENFORCED".into()
            } else {
                "wrong count (UNEXPECTED)".to_string()
            },
        ]);
    }
    // 3. Device binding.
    {
        let sealed = authority.issue(title, vec![Right::Play, Right::Devices(vec![DeviceId(42)])]);
        let mut wrong = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
        wrong
            .store_mut()
            .install(&sealed, authority.verification_key())
            .expect("install");
        let refused = protected_play(&mut wrong, &authority, title, &content, 1, 0).is_err();
        let mut right_dev = PlaybackDevice::new(DeviceId(42), OutputPolicy::DigitalAllowed);
        right_dev
            .store_mut()
            .install(&sealed, authority.verification_key())
            .expect("install");
        let granted = protected_play(&mut right_dev, &authority, title, &content, 1, 0).is_ok();
        table.row(vec![
            "device set".into(),
            "wrong device refused, licensed device plays".to_string(),
            if refused && granted {
                "ENFORCED".into()
            } else {
                "broken (UNEXPECTED)".to_string()
            },
        ]);
    }
    // 4. Time window.
    {
        let sealed = authority.issue(
            title,
            vec![
                Right::Play,
                Right::TimeWindow {
                    not_before: 100,
                    not_after: 200,
                },
            ],
        );
        let mut dev = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
        dev.store_mut()
            .install(&sealed, authority.verification_key())
            .expect("install");
        let before = protected_play(&mut dev, &authority, title, &content, 1, 50).is_err();
        let inside = protected_play(&mut dev, &authority, title, &content, 1, 150).is_ok();
        let after = protected_play(&mut dev, &authority, title, &content, 1, 250).is_err();
        table.row(vec![
            "time window".into(),
            "before/inside/after the window".to_string(),
            if before && inside && after {
                "ENFORCED".into()
            } else {
                "broken (UNEXPECTED)".to_string()
            },
        ]);
    }
    println!("{table}");

    // Tampering.
    let sealed = authority.issue(title, vec![Right::PlayCount(1)]);
    let mut tampered = sealed.clone();
    tampered[10] ^= 0x04; // try to inflate the count
    let detected = License::unseal(&tampered, authority.verification_key()).is_err();
    println!(
        "license tampering detected: {}",
        if detected { "yes" } else { "NO (UNEXPECTED)" }
    );

    // Analog-only output.
    let mut analog = PlaybackDevice::new(DeviceId(1), OutputPolicy::AnalogOnly);
    analog
        .store_mut()
        .install(&sealed, authority.verification_key())
        .expect("install");
    let out = protected_play(&mut analog, &authority, title, &content, 1, 0).expect("play");
    let leaked = matches!(out, drm::playback::PlaybackOutput::Digital(_));
    println!(
        "analog-only device leaks digital bytes: {}",
        if leaked {
            "YES (UNEXPECTED)"
        } else {
            "no (protected path holds)"
        }
    );

    // Decryption overhead.
    let encrypted = authority.encrypt_content(title, &content, 1);
    let mut dev = PlaybackDevice::new(DeviceId(7), OutputPolicy::DigitalAllowed);
    let sealed = authority.issue(title, vec![Right::PlayCount(1000)]);
    dev.store_mut()
        .install(&sealed, authority.verification_key())
        .expect("install");
    let t0 = Instant::now();
    let reps = 50;
    for i in 0..reps {
        let _ = dev.play(title, &encrypted, 1, i).expect("play");
    }
    let per_mb = t0.elapsed().as_secs_f64() / reps as f64 / (content.len() as f64 / 1e6);
    println!(
        "protected-path cost: {} ms per MB decrypted+authorized (XTEA-CTR software)",
        f(per_mb * 1e3, 2)
    );
}
