//! E14 — §7: the small IP stack under loss.
//!
//! Content download (TCP-lite) and license fetch over links of rising
//! loss: transfers stay exact while retransmission cost grows; UDP
//! baseline shows what best-effort alone would deliver.

use mmbench::banner;
use mmsoc::report::{count, f, Table};
use netstack::fetch::{fetch, ContentServer};
use netstack::link::LinkConfig;
use netstack::tcplite::{transfer, TcpConfig};
use netstack::udp::send_datagrams;

fn main() {
    banner(
        "E14: small IP stack for content access and DRM (§7)",
        "devices use small IP stacks for limited purposes such as content \
         access or DRM; reliability must come from the stack, not the link",
    );

    let content: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
    let mut table = Table::new(vec![
        "link loss",
        "tcp-lite exact?",
        "ticks",
        "retransmissions",
        "udp delivery ratio",
    ]);
    for loss in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let link = LinkConfig::default().with_loss(loss);
        let r = transfer(&content, TcpConfig::default(), link, 15).expect("transfer");
        let datagrams: Vec<Vec<u8>> = content.chunks(512).map(<[u8]>::to_vec).collect();
        let udp = send_datagrams(&datagrams, link, 600, 16);
        table.row(vec![
            f(loss, 2),
            if r.data == content {
                "yes".to_string()
            } else {
                "NO".into()
            },
            count(r.ticks),
            count(r.retransmissions),
            f(udp.delivery_ratio(), 3),
        ]);
    }
    println!("{table}");

    // License fetch (the DRM leg).
    let mut server = ContentServer::new();
    server.publish("license.bin", vec![0x42; 300]);
    let mut table = Table::new(vec![
        "link loss",
        "license fetched?",
        "total ticks",
        "retransmissions",
    ]);
    for loss in [0.0, 0.15, 0.3] {
        let link = LinkConfig::default().with_loss(loss);
        match fetch(&server, "license.bin", TcpConfig::default(), link, 17) {
            Ok(r) => {
                table.row(vec![
                    f(loss, 2),
                    (r.data.len() == 300).to_string(),
                    count(r.ticks),
                    count(r.retransmissions),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    f(loss, 2),
                    format!("failed: {e}"),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    println!("{table}");
    println!("expected shape: tcp-lite always exact with cost rising in loss; udp decays toward the raw link rate.");
}
