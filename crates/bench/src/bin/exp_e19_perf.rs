//! E19 — the video hot-path perf harness.
//!
//! Measures the zero-allocation, early-exit encode hot path against the
//! seed implementation it replaced, and writes the machine-readable
//! `BENCH_video.json` that tracks the repo's perf trajectory:
//!
//! * **Full-search ME**: alloc-copy baseline (a faithful reimplementation
//!   of the seed's per-candidate `luma_block_at -> Vec` + `sad_u8` path)
//!   vs the strided/bounded hot path — wall ns/block, plus the
//!   *effective* SAD pixel ops after row-wise early exit vs the
//!   exhaustive count. The two motion fields are asserted bit-identical.
//! * **8×8 DCT**: generic matrix row–column (the seed `Dct2d`) vs the
//!   fixed-8 butterfly — wall ns/block and multiplies per 1-D transform.
//! * **Encoder end-to-end**: frames/s and stage tallies for the default
//!   configuration.

use mmbench::banner;
use mmbench::perf::{matrix_dct2d_forward, median_ns_per_iter, PerfEntry, PerfReport};
use signal::dct1d::Dct1d;
use signal::dct8::{fdct8, FAST8_MULS};
use signal::metrics::{sad_u8, sad_u8_bounded_ops};
use signal::rng::Xoroshiro128;
use video::encoder::{Encoder, EncoderConfig};
use video::frame::Frame;
use video::me::{MotionEstimator, MotionVector, SearchKind, MB};
use video::synth::SequenceGen;

const RANGE: i32 = 15;

/// The seed implementation's full search: one allocating copy per
/// candidate, unbounded SAD. Kept here (not in `video`) purely as the
/// baseline this harness measures against.
fn full_search_alloc_baseline(current: &Frame, reference: &Frame) -> Vec<MotionVector> {
    let (cols, rows) = current.macroblocks();
    let mut out = Vec::with_capacity(cols * rows);
    for by in 0..rows {
        for bx in 0..cols {
            let target = current.luma_block(bx, by, MB);
            let (x0, y0) = ((bx * MB) as i32, (by * MB) as i32);
            let mut best = (MotionVector::default(), u64::MAX);
            for dy in -RANGE..=RANGE {
                for dx in -RANGE..=RANGE {
                    let mv = MotionVector::new(dx, dy);
                    let cand = reference.luma_block_at(x0 + mv.dx, y0 + mv.dy, MB);
                    let s = sad_u8(&target, &cand);
                    if s < best.1 || (s == best.1 && mv.magnitude_sq() < best.0.magnitude_sq()) {
                        best = (mv, s);
                    }
                }
            }
            out.push(best.0);
        }
    }
    out
}

/// Replays the hot path's full search with the instrumented bounded SAD
/// to count the pixel comparisons actually performed after early exit.
fn full_search_effective_ops(current: &Frame, reference: &Frame) -> (u64, u64) {
    let (cols, rows) = current.macroblocks();
    let mut target = [0u8; MB * MB];
    let mut scratch = [0u8; MB * MB];
    let mut effective = 0u64;
    let mut exhaustive = 0u64;
    for by in 0..rows {
        for bx in 0..cols {
            current.luma_block_into(bx, by, MB, &mut target);
            let (x0, y0) = ((bx * MB) as i32, (by * MB) as i32);
            let mut best = (MotionVector::default(), u64::MAX);
            for dy in -RANGE..=RANGE {
                for dx in -RANGE..=RANGE {
                    let mv = MotionVector::new(dx, dy);
                    let view = reference.luma_view(x0 + mv.dx, y0 + mv.dy, MB);
                    let (s, ops) = match view.interior() {
                        Some((cand, stride)) => {
                            sad_u8_bounded_ops(&target, MB, cand, stride, MB, MB, best.1)
                        }
                        None => {
                            view.gather_into(&mut scratch);
                            sad_u8_bounded_ops(&target, MB, &scratch, MB, MB, MB, best.1)
                        }
                    };
                    effective += ops;
                    exhaustive += (MB * MB) as u64;
                    if s < best.1 || (s == best.1 && mv.magnitude_sq() < best.0.magnitude_sq()) {
                        best = (mv, s);
                    }
                }
            }
        }
    }
    (effective, exhaustive)
}

fn main() {
    banner(
        "E19: video hot-path perf (BENCH_video.json)",
        "the encoder inner loop does no per-candidate heap allocation and \
         abandons losing SAD candidates row-wise; the fixed-8 butterfly \
         beats the generic matrix DCT",
    );

    let mut report = PerfReport::new("video_hot_path", "exp_e19_perf");

    // ---- Workload: QCIF pan with noise, so no candidate is perfect and
    // early exit has real work to do.
    let mut gen = SequenceGen::new(5);
    let reference = gen.textured_frame(176, 144);
    let mut current = gen.shift_frame(&reference, 4, -2);
    gen.add_noise(&mut current, 3.0);
    let (cols, rows) = current.macroblocks();
    let blocks = (cols * rows) as f64;

    // ---- Full-search motion estimation: baseline vs hot path.
    let me = MotionEstimator::new(SearchKind::Full, RANGE);
    let baseline_field = full_search_alloc_baseline(&current, &reference);
    let hot_field = me.estimate(&current, &reference);
    let hot_mvs: Vec<MotionVector> = hot_field.blocks.iter().map(|b| b.mv).collect();
    assert_eq!(
        baseline_field, hot_mvs,
        "hot path must reproduce the seed's full-search field bit-for-bit"
    );

    let baseline_ns = median_ns_per_iter(|| {
        std::hint::black_box(full_search_alloc_baseline(
            std::hint::black_box(&current),
            std::hint::black_box(&reference),
        ));
    }) / blocks;
    let hot_ns = median_ns_per_iter(|| {
        std::hint::black_box(me.estimate(
            std::hint::black_box(&current),
            std::hint::black_box(&reference),
        ));
    }) / blocks;
    let (effective_ops, exhaustive_ops) = full_search_effective_ops(&current, &reference);
    let speedup = baseline_ns / hot_ns;

    println!(
        "full-search ME, QCIF, range ±{RANGE} ({} blocks):",
        cols * rows
    );
    println!("  alloc-copy baseline : {baseline_ns:>10.0} ns/block");
    println!("  strided early-exit  : {hot_ns:>10.0} ns/block   ({speedup:.1}x faster)");
    println!(
        "  SAD pixel ops       : {exhaustive_ops} exhaustive -> {effective_ops} effective ({:.1}% skipped by early exit)",
        100.0 * (1.0 - effective_ops as f64 / exhaustive_ops as f64)
    );
    report.push(
        PerfEntry::new("me_full_qcif_range15")
            .metric("blocks", blocks)
            .metric("sad_evaluations", hot_field.total_evaluations() as f64)
            .metric("baseline_wall_ns_per_block", baseline_ns)
            .metric("wall_ns_per_block", hot_ns)
            .metric("speedup_vs_alloc_copy", speedup)
            .metric("sad_pixel_ops_exhaustive", exhaustive_ops as f64)
            .metric("sad_pixel_ops_effective", effective_ops as f64)
            .metric(
                "early_exit_op_fraction",
                effective_ops as f64 / exhaustive_ops as f64,
            ),
    );

    // ---- Fast searches on the same workload (predictor-seeded).
    for kind in [SearchKind::ThreeStep, SearchKind::Diamond] {
        let fast = MotionEstimator::new(kind, RANGE);
        let field = fast.estimate(&current, &reference);
        let ns = median_ns_per_iter(|| {
            std::hint::black_box(fast.estimate(
                std::hint::black_box(&current),
                std::hint::black_box(&reference),
            ));
        }) / blocks;
        let name = kind.to_string();
        println!(
            "  {name:<20}: {ns:>10.0} ns/block   ({} SAD evals, total SAD {})",
            field.total_evaluations(),
            field.total_sad()
        );
        report.push(
            PerfEntry::new(&format!("me_{kind}_qcif_range15"))
                .metric("blocks", blocks)
                .metric("sad_evaluations", field.total_evaluations() as f64)
                .metric("wall_ns_per_block", ns)
                .metric("total_sad", field.total_sad() as f64),
        );
    }

    // ---- 8x8 DCT: matrix row-column vs fixed-8 butterfly.
    let mut rng = Xoroshiro128::new(4);
    let mut block = [0.0f64; 64];
    for v in &mut block {
        *v = rng.range_f64(-128.0, 127.0);
    }
    let dct1d = Dct1d::new(8);
    let dct2d = video::dct::Dct2d::new();
    let matrix_ns = median_ns_per_iter(|| {
        std::hint::black_box(matrix_dct2d_forward(&dct1d, std::hint::black_box(&block)));
    });
    let butterfly_ns = median_ns_per_iter(|| {
        std::hint::black_box(dct2d.forward(std::hint::black_box(&block[..])));
    });
    // Sanity: same transform.
    let a = matrix_dct2d_forward(&dct1d, &block);
    let b = dct2d.forward(&block);
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x - y).abs() < 1e-9, "butterfly must match matrix DCT");
    }
    // One row transform for scale.
    let mut line = [0.0f64; 8];
    line.copy_from_slice(&block[..8]);
    let fdct8_ns = median_ns_per_iter(|| {
        std::hint::black_box(fdct8(std::hint::black_box(&line)));
    });

    println!("\n8x8 forward DCT:");
    println!("  matrix row-column   : {matrix_ns:>10.1} ns/block (64 muls per 1-D)");
    println!(
        "  fixed-8 butterfly   : {butterfly_ns:>10.1} ns/block ({FAST8_MULS} muls per 1-D, {:.1}x faster)",
        matrix_ns / butterfly_ns
    );
    report.push(
        PerfEntry::new("dct8x8_forward")
            .metric("matrix_wall_ns_per_block", matrix_ns)
            .metric("butterfly_wall_ns_per_block", butterfly_ns)
            .metric("speedup_vs_matrix", matrix_ns / butterfly_ns)
            .metric("matrix_muls_per_1d", 64.0)
            .metric("butterfly_muls_per_1d", FAST8_MULS as f64)
            .metric("fdct8_wall_ns", fdct8_ns),
    );

    // ---- Encoder end-to-end.
    let frames = mmbench::test_video(64, 48, 8);
    let enc = Encoder::new(EncoderConfig::default()).expect("default config is valid");
    let encoded = enc.encode(&frames).expect("encode succeeds");
    let encode_ns = median_ns_per_iter(|| {
        std::hint::black_box(enc.encode(std::hint::black_box(&frames)).unwrap());
    });
    let ns_per_frame = encode_ns / frames.len() as f64;
    println!("\nencoder end-to-end (64x48, 8 frames, default config):");
    println!(
        "  {:.2} ms/frame ({:.0} frames/s), {} SAD evals, {} DCT blocks",
        ns_per_frame / 1e6,
        1e9 / ns_per_frame,
        encoded.tally.me_sad_evaluations,
        encoded.tally.dct_blocks
    );
    report.push(
        PerfEntry::new("encoder_64x48_default")
            .metric("frames", frames.len() as f64)
            .metric("wall_ns_per_frame", ns_per_frame)
            .metric("frames_per_second", 1e9 / ns_per_frame)
            .metric(
                "me_sad_evaluations",
                encoded.tally.me_sad_evaluations as f64,
            )
            .metric("dct_blocks", encoded.tally.dct_blocks as f64)
            .metric("mean_psnr_db", encoded.mean_psnr_db())
            .metric("total_bits", encoded.total_bits() as f64),
    );

    report
        .write("BENCH_video.json")
        .expect("write BENCH_video.json");
    println!(
        "\nwrote BENCH_video.json ({} entries)",
        report.entries.len()
    );
}
