//! E8 — §4: the RPE-LTP voice codec.
//!
//! Encodes voiced and unvoiced material through the GSM-structured codec:
//! bit rate in the 13 kbit/s ballpark, strong long-term-predictor gain on
//! voiced (periodic) speech, lags tracking the pitch period.

use audio::rpeltp::{RpeLtp, FRAME};
use mmbench::banner;
use mmsoc::report::{f, Table};
use signal::gen::{SignalGen, SpeechSegment};

fn main() {
    banner(
        "E8: RPE-LTP speech coding (§4)",
        "GSM's RPE-LTP uses a simple voice model: periodic voiced sound and \
         broadband unvoiced sound from filtered glottal resonance plus noise",
    );

    let codec = RpeLtp::new();
    let mut table = Table::new(vec![
        "material",
        "bitrate kbit/s",
        "mean LTP gain",
        "decoded/source RMS",
    ]);
    let mut g = SignalGen::new(88);
    for (name, seg) in [
        ("voiced 100 Hz", SpeechSegment::Voiced { pitch_hz: 100.0 }),
        ("voiced 160 Hz", SpeechSegment::Voiced { pitch_hz: 160.0 }),
        ("unvoiced", SpeechSegment::Unvoiced),
    ] {
        let (speech, _) = g.speech(&[(seg, 10 * FRAME)], 8000.0);
        let enc = codec.encode(&speech).expect("encode");
        let dec = codec.decode(&enc.bytes).expect("decode");
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        let gain: f64 = enc.frames[2..]
            .iter()
            .map(|fr| fr.mean_ltp_gain)
            .sum::<f64>()
            / (enc.frames.len() - 2) as f64;
        table.row(vec![
            name.to_string(),
            f(enc.bitrate_bps() / 1000.0, 2),
            f(gain, 2),
            f(rms(&dec) / rms(&speech).max(1e-9), 2),
        ]);
    }
    println!("{table}");

    // Pitch tracking.
    let (speech, _) = g.speech(
        &[(SpeechSegment::Voiced { pitch_hz: 100.0 }, 10 * FRAME)],
        8000.0,
    );
    let enc = codec.encode(&speech).expect("encode");
    let lags: Vec<usize> = enc.frames[3..].iter().flat_map(|fr| fr.lags).collect();
    let near = lags
        .iter()
        .filter(|&&l| (l as i64 - 80).abs() <= 3 || (l as i64 - 40).abs() <= 3)
        .count();
    println!(
        "pitch tracking: {}/{} subframe lags at the 80-sample period (or half) for 100 Hz pitch",
        near,
        lags.len()
    );
    println!("expected shape: ~13 kbit/s; voiced gain >> unvoiced gain; lags lock to pitch.");
}
