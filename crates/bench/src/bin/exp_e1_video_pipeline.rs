//! E1 — Figure 1: the video encoder pipeline, stage for stage.
//!
//! Regenerates the paper's Figure 1 as an executable: encodes a CIF
//! sequence through DCT → quantizer → VLC → buffer with the motion
//! estimation/compensation feedback loop, and reports where the
//! operations go. Expected shape: motion estimation dominates encode
//! cost.

use mmbench::{banner, cif_spec, test_video, SEED};
use mmsoc::report::{count, f, Table};
use mmsoc::video_encoder_pipeline;
use video::encoder::Encoder;

fn main() {
    banner(
        "E1: Figure 1 — video encoder structure",
        "the encoder is DCT + quantizer + VLC + buffer with an ME/MC feedback loop; \
         motion estimation is the dominant computation",
    );

    // Run the real encoder on a CIF-scale sequence (trimmed for runtime).
    let frames = test_video(352, 288, 12);
    let encoded = Encoder::new(cif_spec().config)
        .expect("valid config")
        .encode(&frames)
        .expect("encode");

    println!(
        "sequence: {} frames 352x288, {:.1}:1 compression, {:.1} dB mean PSNR\n",
        frames.len(),
        encoded.compression_ratio(),
        encoded.mean_psnr_db()
    );

    let pipeline = video_encoder_pipeline(&cif_spec(), SEED);
    let total: u64 = pipeline.stage_ops.iter().map(|(_, v)| v).sum();
    let mut table = Table::new(vec!["stage (Figure 1 box)", "ops/frame", "share"]);
    for (name, ops) in &pipeline.stage_ops {
        table.row(vec![
            name.clone(),
            count(*ops),
            format!("{}%", f(100.0 * *ops as f64 / total as f64, 1)),
        ]);
    }
    println!("{table}");

    let me = pipeline
        .stage_ops
        .iter()
        .find(|(n, _)| n == "motion-estimator")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    println!(
        "motion estimation share: {}% — {}",
        f(100.0 * me as f64 / total as f64, 1),
        if 2 * me > total {
            "DOMINANT (matches the paper's compute story)"
        } else {
            "not dominant (UNEXPECTED)"
        }
    );
}
