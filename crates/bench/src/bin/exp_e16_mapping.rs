//! E16 — §1–2, §8: why *multiprocessor* systems-on-chips.
//!
//! Maps the Figure 1 encoder graph onto platforms of 1–8 PEs over shared
//! bus and mesh NoC, across mapping strategies. Expected shape: speedup
//! grows with PE count until the shared bus saturates; the NoC scales
//! further; smart mappings beat naive ones.

use mmbench::{banner, cif_spec, SEED};
use mmsoc::deploy::{deploy, Strategy};
use mmsoc::report::{f, Table};
use mmsoc::video_encoder_pipeline;
use mpsoc::platform::Platform;

fn main() {
    banner(
        "E16: MPSoC mapping of the encoder (§1-2, §8)",
        "multimedia workloads need multiprocessor SoCs: more PEs buy \
         throughput until the interconnect or the mapping becomes the limit",
    );

    let pipeline = video_encoder_pipeline(&cif_spec(), SEED);
    let iterations = 24;

    // PE scaling, bus vs mesh, best strategy per point.
    let mut table = Table::new(vec![
        "PEs",
        "bus fps (best)",
        "bus speedup",
        "mesh fps (best)",
        "mesh speedup",
    ]);
    let mut bus_base = 0.0;
    let mut mesh_base = 0.0;
    for &n in &[1usize, 2, 4, 8] {
        let bus = Platform::symmetric_bus("bus", n, 300e6);
        let mesh_cols = match n {
            1 => (1, 1),
            2 => (2, 1),
            4 => (2, 2),
            _ => (4, 2),
        };
        let mesh = Platform::symmetric_mesh("mesh", mesh_cols.0, mesh_cols.1, 300e6);
        let best_fps = |platform: &Platform| -> f64 {
            Strategy::ALL
                .iter()
                .map(|&s| {
                    deploy(&pipeline.graph, platform, s, iterations)
                        .map(|d| d.throughput_hz())
                        .unwrap_or(0.0)
                })
                .fold(0.0, f64::max)
        };
        let bus_fps = best_fps(&bus);
        let mesh_fps = best_fps(&mesh);
        if n == 1 {
            bus_base = bus_fps;
            mesh_base = mesh_fps;
        }
        table.row(vec![
            n.to_string(),
            f(bus_fps, 2),
            f(bus_fps / bus_base, 2),
            f(mesh_fps, 2),
            f(mesh_fps / mesh_base, 2),
        ]);
    }
    println!("{table}");

    // Strategy comparison at 4 PEs on the bus.
    let platform = Platform::symmetric_bus("quad", 4, 300e6);
    let mut table = Table::new(vec![
        "strategy",
        "fps",
        "PE utilization (mean)",
        "bus utilization",
    ]);
    for s in Strategy::ALL {
        let d = deploy(&pipeline.graph, &platform, s, iterations).expect("deploy");
        let mean_util: f64 =
            d.report.pe_utilization().iter().sum::<f64>() / platform.pe_count() as f64;
        table.row(vec![
            s.to_string(),
            f(d.throughput_hz(), 2),
            f(mean_util, 2),
            f(d.report.interconnect_utilization(), 3),
        ]);
    }
    println!("{table}");

    // Interconnect saturation: shrink the shared bus under the best 4-PE
    // mapping until communication dominates.
    use mpsoc::platform::InterconnectSpec;
    let mut table = Table::new(vec!["bus bandwidth MB/s", "fps", "bus utilization"]);
    for bw in [400.0, 40.0, 10.0, 2.5] {
        let p =
            Platform::symmetric_bus("quad", 4, 300e6).with_interconnect(InterconnectSpec::Bus {
                bandwidth_bytes_per_s: bw * 1e6,
                arbitration_s: 50e-9,
                energy_pj_per_byte: 5.0,
            });
        let d = deploy(&pipeline.graph, &p, Strategy::LoadBalanced, iterations).expect("deploy");
        table.row(vec![
            f(bw, 1),
            f(d.throughput_hz(), 2),
            f(d.report.interconnect_utilization(), 3),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: speedup with PEs until task granularity and the shared \
         medium limit it; shrinking bus bandwidth saturates the interconnect and \
         collapses throughput."
    );
}
