//! E23 — event-calendar simulation core at scale.
//!
//! Regenerates the delivery-stack capacity numbers on the cohort
//! engine and writes the machine-readable `BENCH_sim.json` that
//! extends the repo's perf trajectory:
//!
//! * **Knee reproduction**: the BENCH_edge sweep (1/2/4/8 warm edges
//!   at 4,000 bytes/tick per link) must land on the exact knees the
//!   per-session engine recorded — 1,000/2,000/4,000/8,000 — and the
//!   new bisecting knee must agree with the full curve scan on both
//!   the VOD and the live sweeps. All asserted in-binary.
//! * **Flash-crowd reproduction**: the PR 5 absorption bar — the 10x
//!   flash crowd collapses one origin (> 5% rebuffering) while a
//!   cold 4-edge tier holds ≤ 5% through the same spike.
//! * **The 1M-session live sweep**: a million live-edge viewers join
//!   a channel over 1,000 ticks, through a 4-edge tier provisioned to
//!   sustain them. Under the retired per-session engine this touched
//!   every viewer every quantum (~330k simulated sessions/s, hours per
//!   sweep point at this scale); the cohort engine collapses the
//!   million viewers into a few thousand counted classes and must
//!   finish in seconds, at ≥ 10x the old sessions/s — both asserted
//!   before anything is written.
//!
//! All numbers are seed-deterministic (asserted by re-running the 1M
//! level and comparing reports exactly).

use std::time::Instant;

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmstream::edge::EdgeTierConfig;
use mmstream::ladder::{encode_ladder, LadderConfig};
use mmstream::serve::{
    edge_capacity_curve, edge_capacity_knee, edge_capacity_knee_bisect, live_edge_capacity_curve,
    live_edge_capacity_knee, live_edge_capacity_knee_bisect, simulate_live_edge_load,
    simulate_live_load, ChurnConfig, LiveConfig, LoadConfig, ServerConfig,
};
use mmstream::session::JoinMode;
use video::synth::SequenceGen;

fn main() {
    banner(
        "E23: event-calendar simulation core (BENCH_sim.json)",
        "the cohort fluid engine reproduces every edge-tier capacity \
         knee and the flash-crowd absorption bar of the per-session \
         engine, then takes the same live workload to one million \
         concurrent viewers in seconds",
    );

    let mut report = PerfReport::new("sim_core", "exp_e23_sim");

    // ---- The E21 VOD title: knees directly comparable to BENCH_edge.
    let source = SequenceGen::new(12).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let manifest = encode_ladder("bench", &source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let base = LoadConfig::default();

    println!("knee reproduction vs BENCH_edge (warm edges, 4,000 B/tick each):");
    let counts = [200usize, 1_000, 2_000, 4_000, 8_000, 16_000];
    for edges in [1usize, 2, 4, 8] {
        let tier = EdgeTierConfig {
            edges,
            cache_capacity_bytes: usize::MAX,
            prewarm: true,
            ..Default::default()
        };
        let curve = edge_capacity_curve(&manifest, &tier, &counts, &base);
        let scan = edge_capacity_knee(&curve, 0.05).expect("tier sustains some level");
        let bisect = edge_capacity_knee_bisect(&manifest, &tier, &counts, &base, 0.05)
            .expect("bisect finds the same level");
        assert_eq!(
            bisect, scan,
            "bisecting knee must equal the curve scan ({edges} edges)"
        );
        assert_eq!(
            scan,
            1_000 * edges,
            "the {edges}-edge knee must reproduce the per-session engine's"
        );
        println!("  {edges} edges: knee {scan} sessions (bisect agrees)");
        report.push(
            PerfEntry::new(&format!("knee_bisect_{edges}_edges"))
                .metric("edges", edges as f64)
                .metric("knee_sessions", scan as f64)
                .metric("bisect_equals_scan", 1.0),
        );
    }

    // ---- The E22 live title (16 segments, 400-tick publish pace).
    let live_source = SequenceGen::new(12).panning_sequence(64, 48, 64, 1, 1);
    let live_manifest = encode_ladder("bench", &live_source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let live_edge_join = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };

    println!("\nlive knee: bisect vs curve scan (live-edge joins, cold edges):");
    let live_counts = [500usize, 1_000, 2_000, 4_000, 8_000];
    for edges in [1usize, 4] {
        let tier = EdgeTierConfig {
            edges,
            prewarm: false,
            ..Default::default()
        };
        let curve =
            live_edge_capacity_curve(&live_manifest, &tier, &live_edge_join, &live_counts, &base);
        let scan = live_edge_capacity_knee(&curve, 0.05).expect("tier sustains some live level");
        let bisect = live_edge_capacity_knee_bisect(
            &live_manifest,
            &tier,
            &live_edge_join,
            &live_counts,
            &base,
            0.05,
        )
        .expect("bisect finds the same level");
        assert_eq!(
            bisect, scan,
            "live bisecting knee must equal the curve scan ({edges} edges)"
        );
        println!("  {edges} edges: live knee {scan} sessions (bisect agrees)");
        report.push(
            PerfEntry::new(&format!("live_knee_bisect_{edges}_edges"))
                .metric("edges", edges as f64)
                .metric("knee_sessions", scan as f64)
                .metric("bisect_equals_scan", 1.0),
        );
    }

    // ---- The PR 5 flash-crowd absorption bar, regenerated.
    println!("\n10x flash crowd (300 steady viewers + 3,000 over a 1,000-tick ramp):");
    let flashed = LoadConfig {
        sessions: 300,
        stagger_ticks: 1_000,
        churn: ChurnConfig {
            flash_sessions: 3_000,
            flash_at_tick: 2_000,
            flash_ramp_ticks: 1_000,
            ..Default::default()
        },
        ..base
    };
    let single_flash = simulate_live_load(
        &live_manifest,
        &ServerConfig::default(),
        &live_edge_join,
        &flashed,
    );
    let flash_tier = EdgeTierConfig {
        edges: 4,
        prewarm: false,
        ..Default::default()
    };
    let edge_flash =
        simulate_live_edge_load(&live_manifest, &flash_tier, &live_edge_join, &flashed);
    println!(
        "  single origin: rebuffer {:>5.1}%   4-edge tier: rebuffer {:>5.1}% (hit rate {:.1}%)",
        100.0 * single_flash.load.rebuffer_fraction,
        100.0 * edge_flash.edge.load.rebuffer_fraction,
        100.0 * edge_flash.edge.hit_rate,
    );
    assert!(
        single_flash.load.rebuffer_fraction > 0.05,
        "the flash crowd must still drive a single origin past its knee"
    );
    assert!(
        edge_flash.edge.load.rebuffer_fraction <= 0.05,
        "the 4-edge tier must still absorb the flash crowd"
    );
    report.push(
        PerfEntry::new("flash_crowd_bar")
            .metric(
                "single_origin_rebuffer_fraction",
                single_flash.load.rebuffer_fraction,
            )
            .metric(
                "edge4_rebuffer_fraction",
                edge_flash.edge.load.rebuffer_fraction,
            )
            .metric("edge4_hit_rate", edge_flash.edge.hit_rate),
    );

    // ---- The 1M-session live sweep: a 4-edge tier provisioned for a
    // million-viewer audience (each edge's downlink carries its 250k
    // viewers at the full 100 B/tick access-link rate; the origin
    // uplink stays at 4,000 B/tick — each segment still crosses it
    // once per edge while every co-located viewer coalesces).
    println!("\n1M-session live sweep (4 provisioned edges, live-edge joins):");
    let big_tier = EdgeTierConfig {
        edges: 4,
        edge_capacity_bytes_per_tick: 2.5e7,
        prewarm: false,
        ..Default::default()
    };
    let mut rate_1m = 0.0f64;
    let mut wall_ms_1m = 0.0f64;
    for sessions in [10_000usize, 100_000, 1_000_000] {
        let load = LoadConfig { sessions, ..base };
        let t0 = Instant::now();
        let r = simulate_live_edge_load(&live_manifest, &big_tier, &live_edge_join, &load);
        let wall = t0.elapsed();
        let per_s = sessions as f64 / wall.as_secs_f64();
        println!(
            "  {sessions:>9} sessions: {:>8.1} ms  ({:>5.1}M sessions/s, rebuffer {:.2}%, hit rate {:.1}%)",
            wall.as_secs_f64() * 1e3,
            per_s / 1e6,
            100.0 * r.edge.load.rebuffer_fraction,
            100.0 * r.edge.hit_rate,
        );
        assert_eq!(
            r.edge.load.completed, sessions,
            "a provisioned tier must carry every viewer to the end"
        );
        report.push(
            PerfEntry::new(&format!("live_sweep_{sessions}_sessions"))
                .metric("sessions", sessions as f64)
                .metric("wall_ms", wall.as_secs_f64() * 1e3)
                .metric("sessions_per_second", per_s)
                .metric("rebuffer_fraction", r.edge.load.rebuffer_fraction)
                .metric("hit_rate", r.edge.hit_rate)
                .metric("coalesced_waiters", r.edge.tier.coalesced as f64),
        );
        if sessions == 1_000_000 {
            rate_1m = per_s;
            wall_ms_1m = wall.as_secs_f64() * 1e3;
            // Determinism gate: an identical re-run must agree exactly.
            let replay = simulate_live_edge_load(&live_manifest, &big_tier, &live_edge_join, &load);
            assert_eq!(replay, r, "the 1M sweep must be seed-deterministic");
        }
    }

    // The tentpole bars, gated before the report is written: in
    // seconds (not hours), and ≥ 10x the per-session engine's ~330k
    // simulated sessions/s.
    assert!(
        wall_ms_1m < 30_000.0,
        "the 1M-session sweep must finish in seconds: {wall_ms_1m:.0} ms"
    );
    assert!(
        rate_1m >= 3.3e6,
        "cohort engine must clear 10x the ~330k/s per-session rate: {rate_1m:.0}/s"
    );
    println!(
        "  1M sweep in {:.2} s at {:.1}M sessions/s (>= 10x the per-session engine): ok",
        wall_ms_1m / 1e3,
        rate_1m / 1e6
    );
    report.push(
        PerfEntry::new("simulator_rate_1m")
            .metric("sessions", 1e6)
            .metric("wall_ms", wall_ms_1m)
            .metric("sessions_per_second", rate_1m)
            .metric("speedup_vs_330k_baseline", rate_1m / 330_000.0),
    );

    report
        .write("BENCH_sim.json")
        .expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json ({} entries)", report.entries.len());
}
