//! E22 — live/linear delivery harness.
//!
//! Measures the live workload class end to end and writes the
//! machine-readable `BENCH_live.json` that extends the repo's perf
//! trajectory:
//!
//! * **Steady-state live capacity knee vs edge count**: viewers joining
//!   at the live edge, paced by the publish clock, for 1/2/4/8 cold
//!   edges at the PR 3 per-link capacity (4,000 bytes/tick). The knee
//!   must scale with edge count exactly as the VOD knee does — asserted
//!   in-binary: the 4-edge live knee is ≥ 2x the single-edge one.
//! * **Live latency vs DVR depth**: DvrStart joiners on an
//!   already-running channel; a deeper window means more catch-up
//!   distance, so mean live latency must grow monotonically with DVR
//!   depth (asserted).
//! * **The 10x flash crowd**: 300 steady viewers, then 3,000 more over
//!   a 1,000-tick ramp mid-event. The single origin collapses
//!   (rebuffer fraction > 5%); the warm 4-edge tier — warmed only
//!   organically, by the steady viewers — holds ≤ 5% rebuffering
//!   through the same spike, because every just-published live-edge
//!   segment crosses the origin once per edge while thousands of
//!   waiters coalesce onto that one fill. All three bars are asserted
//!   before anything is written.
//!
//! All numbers are seed-deterministic (asserted by re-running a level).

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmstream::edge::EdgeTierConfig;
use mmstream::ladder::{encode_ladder, LadderConfig};
use mmstream::serve::{
    live_edge_capacity_curve, live_edge_capacity_knee, simulate_live_edge_load, simulate_live_load,
    ChurnConfig, LiveConfig, LoadConfig, ServerConfig,
};
use mmstream::session::JoinMode;
use video::synth::SequenceGen;

fn main() {
    banner(
        "E22: live/linear delivery (BENCH_live.json)",
        "a rolling-window live channel through the delivery stack: the \
         live capacity knee scales with edge count, latency trades \
         against DVR depth, and a warm edge tier absorbs the 10x flash \
         crowd that collapses a single origin",
    );

    let mut report = PerfReport::new("live_delivery", "exp_e22_live");

    // A 16-segment event (64 frames, GOP 4) at the natural publish
    // pace: 4 frames x 100 ticks = 400 ticks per segment.
    let source = SequenceGen::new(12).panning_sequence(64, 48, 64, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let manifest = encode_ladder("bench", &source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let base = LoadConfig::default();
    let live_edge_join = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };

    // ---- Steady-state live knee vs edge count.
    println!("live capacity knee vs edge count (live-edge joins, 4,000 B/tick per link):");
    let counts = [500usize, 1_000, 2_000, 4_000, 8_000];
    let mut knee_1 = 0usize;
    let mut knee_4 = 0usize;
    for edges in [1usize, 2, 4, 8] {
        let tier = EdgeTierConfig {
            edges,
            prewarm: false,
            ..Default::default()
        };
        let curve = live_edge_capacity_curve(&manifest, &tier, &live_edge_join, &counts, &base);
        let knee = live_edge_capacity_knee(&curve, 0.05).expect("tier sustains some live level");
        match edges {
            1 => knee_1 = knee,
            4 => knee_4 = knee,
            _ => {}
        }
        println!("  {edges} edges: knee {knee} sessions");
        report.push(
            PerfEntry::new(&format!("live_knee_{edges}_edges"))
                .metric("edges", edges as f64)
                .metric("knee_sessions", knee as f64),
        );
        if edges == 4 {
            for r in &curve {
                report.push(
                    PerfEntry::new(&format!(
                        "live_edge4_load_{}_sessions",
                        r.edge.load.sessions
                    ))
                    .metric("sessions", r.edge.load.sessions as f64)
                    .metric("rebuffer_fraction", r.edge.load.rebuffer_fraction)
                    .metric("mean_live_latency_ticks", r.live.mean_latency_ticks)
                    .metric("hit_rate", r.edge.hit_rate),
                );
            }
        }
    }
    assert!(
        knee_4 >= 2 * knee_1,
        "4 edges must at least double the live knee: {knee_4} vs {knee_1}"
    );
    println!("4-edge live knee {knee_4} >= 2x single-edge knee {knee_1}: ok\n");

    // ---- Live latency vs DVR depth: DvrStart joiners on a channel
    // that already published the whole event.
    println!("live latency vs DVR depth (DvrStart joins, 400-tick segments):");
    let mut last_mean = 0.0f64;
    for dvr in [2u64, 4, 8, 16] {
        let lc = LiveConfig {
            dvr_window_segments: dvr,
            head_start_segments: manifest.segment_count() as u64 - 1,
            join: JoinMode::DvrStart,
            ..Default::default()
        };
        let r = simulate_live_load(
            &manifest,
            &ServerConfig::default(),
            &lc,
            &LoadConfig {
                sessions: 200,
                ..base
            },
        );
        assert_eq!(r.load.completed, 200, "every DVR viewer reaches the end");
        println!(
            "  dvr {dvr:>2} segments: mean latency {:>6.0} ticks, max {:>5}",
            r.live.mean_latency_ticks, r.live.max_latency_ticks
        );
        report.push(
            PerfEntry::new(&format!("live_latency_dvr_{dvr}"))
                .metric("dvr_window_segments", dvr as f64)
                .metric("mean_live_latency_ticks", r.live.mean_latency_ticks)
                .metric("max_live_latency_ticks", r.live.max_latency_ticks as f64)
                .metric("rebuffer_fraction", r.load.rebuffer_fraction),
        );
        assert!(
            r.live.mean_latency_ticks >= last_mean,
            "a deeper DVR window cannot lower catch-up latency"
        );
        last_mean = r.live.mean_latency_ticks;
    }

    // ---- The 10x flash crowd.
    println!("\n10x flash crowd (300 steady viewers + 3,000 over a 1,000-tick ramp):");
    let flashed = LoadConfig {
        sessions: 300,
        stagger_ticks: 1_000,
        churn: ChurnConfig {
            flash_sessions: 3_000,
            flash_at_tick: 2_000,
            flash_ramp_ticks: 1_000,
            ..Default::default()
        },
        ..base
    };
    let calm = LoadConfig {
        churn: ChurnConfig::default(),
        ..flashed
    };
    let server = ServerConfig::default();
    let single_calm = simulate_live_load(&manifest, &server, &live_edge_join, &calm);
    let single_flash = simulate_live_load(&manifest, &server, &live_edge_join, &flashed);
    let tier = EdgeTierConfig {
        edges: 4,
        prewarm: false,
        ..Default::default()
    };
    let edge_flash = simulate_live_edge_load(&manifest, &tier, &live_edge_join, &flashed);
    println!(
        "  single origin, calm:    rebuffer {:>5.1}% ({} sessions)",
        100.0 * single_calm.load.rebuffer_fraction,
        single_calm.load.sessions
    );
    println!(
        "  single origin, flashed: rebuffer {:>5.1}% ({} sessions)",
        100.0 * single_flash.load.rebuffer_fraction,
        single_flash.load.sessions
    );
    println!(
        "  4-edge tier,  flashed:  rebuffer {:>5.1}% (hit rate {:.1}%, {} fills fed {} waiters)",
        100.0 * edge_flash.edge.load.rebuffer_fraction,
        100.0 * edge_flash.edge.hit_rate,
        edge_flash.edge.tier.misses,
        edge_flash.edge.tier.coalesced
    );

    // The tentpole bars, gated before the report is written.
    assert!(
        single_calm.load.rebuffer_fraction <= 0.05,
        "the steady audience must be comfortable on one origin"
    );
    assert!(
        single_flash.load.rebuffer_fraction > 0.05,
        "the flash crowd must drive a single origin past its knee: {}",
        single_flash.load.rebuffer_fraction
    );
    assert!(
        edge_flash.edge.load.rebuffer_fraction <= 0.05,
        "a warm 4-edge tier must hold <=5% rebuffering through the spike: {}",
        edge_flash.edge.load.rebuffer_fraction
    );
    println!("  flash-crowd edge-absorption bar holds\n");
    report.push(
        PerfEntry::new("flash_crowd_single_origin")
            .metric("sessions", single_flash.load.sessions as f64)
            .metric("rebuffer_fraction", single_flash.load.rebuffer_fraction)
            .metric("calm_rebuffer_fraction", single_calm.load.rebuffer_fraction),
    );
    report.push(
        PerfEntry::new("flash_crowd_4_edges")
            .metric("sessions", edge_flash.edge.load.sessions as f64)
            .metric("rebuffer_fraction", edge_flash.edge.load.rebuffer_fraction)
            .metric("hit_rate", edge_flash.edge.hit_rate)
            .metric("origin_fills", edge_flash.edge.tier.misses as f64)
            .metric("coalesced_waiters", edge_flash.edge.tier.coalesced as f64)
            .metric(
                "mean_live_latency_ticks",
                edge_flash.live.mean_latency_ticks,
            ),
    );

    // ---- Determinism gate: an identical re-run must agree exactly.
    let replay = simulate_live_edge_load(&manifest, &tier, &live_edge_join, &flashed);
    assert_eq!(
        replay, edge_flash,
        "live load simulation must be deterministic for identical seeds"
    );

    report
        .write("BENCH_live.json")
        .expect("write BENCH_live.json");
    println!("wrote BENCH_live.json ({} entries)", report.entries.len());
}
