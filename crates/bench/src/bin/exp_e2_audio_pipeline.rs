//! E2 — Figure 2: the MPEG-1 audio encoder pipeline, stage for stage.
//!
//! Runs the real subband encoder (mapper → psychoacoustic model →
//! quantizer/coder → frame packer) and reports the per-stage operation
//! budget. Expected shape: the mapper (filterbank) and psychoacoustic
//! model dominate.

use audio::encoder::{decode, AudioConfig, AudioEncoder};
use mmbench::{banner, test_music, SEED};
use mmsoc::audio_encoder_pipeline;
use mmsoc::report::{count, f, Table};
use signal::metrics::snr;

fn main() {
    banner(
        "E2: Figure 2 — MPEG-1 audio encoder structure",
        "the encoder is mapper + quantizer/coder + frame packer steered by a \
         psychoacoustic model",
    );

    let pcm = test_music(8);
    let encoder = AudioEncoder::new(AudioConfig::default());
    let stream = encoder.encode(&pcm).expect("encode");
    let out = decode(&stream.bytes).expect("decode");
    println!(
        "stream: {} frames, {:.0} kbit/s, {:.1}:1 vs 16-bit PCM, {:.1} dB SNR\n",
        stream.frames.len(),
        stream.bitrate_bps(44_100.0) / 1000.0,
        stream.compression_ratio(),
        snr(&pcm, &out.samples).expect("equal lengths")
    );

    let pipeline = audio_encoder_pipeline(SEED);
    let total: u64 = pipeline.stage_ops.iter().map(|(_, v)| v).sum();
    let mut table = Table::new(vec!["stage (Figure 2 box)", "ops/frame", "share"]);
    for (name, ops) in &pipeline.stage_ops {
        table.row(vec![
            name.clone(),
            count(*ops),
            format!("{}%", f(100.0 * *ops as f64 / total as f64, 1)),
        ]);
    }
    println!("{table}");

    let front: u64 = pipeline
        .stage_ops
        .iter()
        .filter(|(n, _)| n == "mapper" || n == "psychoacoustic-model")
        .map(|(_, v)| v)
        .sum();
    println!(
        "mapper + psychoacoustic share: {}% — {}",
        f(100.0 * front as f64 / total as f64, 1),
        if 2 * front > total {
            "front end dominates (matches Figure 2's emphasis)"
        } else {
            "front end does not dominate (UNEXPECTED)"
        }
    );
}
