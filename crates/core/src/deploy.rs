//! Deployment: choosing a mapping and running an application on its
//! platform.
//!
//! The MPSoC design loop in miniature: take a device's application graph,
//! try the mapping heuristics, simulate streaming execution, and report
//! whether the device meets its real-time target and at what energy.

use mpsoc::map::Mapping;
use mpsoc::platform::Platform;
use mpsoc::sched::{RunReport, SimError, Simulator};
use mpsoc::task::TaskGraph;

use crate::profile::DeviceClass;

/// A named mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Everything on PE 0.
    SingleCore,
    /// Round-robin across PEs.
    RoundRobin,
    /// Load-balanced (LPT with per-PE speed).
    LoadBalanced,
    /// Contiguous pipeline groups.
    PipelineAffine,
    /// Load-balanced then hill-climb improved.
    Improved,
}

impl Strategy {
    /// All strategies in evaluation order.
    pub const ALL: [Strategy; 5] = [
        Strategy::SingleCore,
        Strategy::RoundRobin,
        Strategy::LoadBalanced,
        Strategy::PipelineAffine,
        Strategy::Improved,
    ];

    /// Builds the mapping for a graph on a platform.
    #[must_use]
    pub fn mapping(self, graph: &TaskGraph, platform: &Platform) -> Mapping {
        match self {
            Strategy::SingleCore => Mapping::all_on_one(graph),
            Strategy::RoundRobin => Mapping::round_robin(graph, platform.pe_count()),
            Strategy::LoadBalanced => Mapping::load_balanced(graph, platform),
            Strategy::PipelineAffine => Mapping::pipeline_affine(graph, platform),
            Strategy::Improved => {
                Mapping::load_balanced(graph, platform).improved(graph, platform, 8, 3)
            }
        }
    }
}

impl core::fmt::Display for Strategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Strategy::SingleCore => "single-core",
            Strategy::RoundRobin => "round-robin",
            Strategy::LoadBalanced => "load-balanced",
            Strategy::PipelineAffine => "pipeline-affine",
            Strategy::Improved => "improved",
        })
    }
}

/// Result of deploying an application.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The strategy that produced the mapping.
    pub strategy: Strategy,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Streaming simulation report.
    pub report: RunReport,
}

impl Deployment {
    /// Frames per second achieved in steady streaming.
    #[must_use]
    pub fn throughput_hz(&self) -> f64 {
        self.report.throughput_per_s()
    }

    /// `true` when the deployment sustains the given frame rate.
    #[must_use]
    pub fn meets(&self, target_hz: f64) -> bool {
        self.throughput_hz() >= target_hz
    }
}

/// Deploys `graph` on `platform` with one strategy, streaming
/// `iterations` frames.
///
/// # Errors
///
/// Returns [`SimError`] from the simulator (invalid graphs/mappings).
pub fn deploy(
    graph: &TaskGraph,
    platform: &Platform,
    strategy: Strategy,
    iterations: usize,
) -> Result<Deployment, SimError> {
    let mapping = strategy.mapping(graph, platform);
    let report = Simulator::new(platform).run_stream(graph, &mapping, iterations)?;
    Ok(Deployment {
        strategy,
        mapping,
        report,
    })
}

/// Tries every strategy and returns all deployments plus the index of the
/// best (highest throughput).
///
/// # Errors
///
/// Returns [`SimError`] if any simulation fails.
pub fn deploy_best(
    graph: &TaskGraph,
    platform: &Platform,
    iterations: usize,
) -> Result<(Vec<Deployment>, usize), SimError> {
    let mut all = Vec::with_capacity(Strategy::ALL.len());
    for s in Strategy::ALL {
        all.push(deploy(graph, platform, s, iterations)?);
    }
    let best = all
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.throughput_hz().total_cmp(&b.1.throughput_hz()))
        .map(|(i, _)| i)
        .expect("strategies are non-empty");
    Ok((all, best))
}

/// Deploys a device class end to end: its application on its platform
/// with the best strategy.
///
/// # Errors
///
/// Returns [`SimError`] if simulation fails.
pub fn deploy_device(
    class: DeviceClass,
    seed: u64,
    iterations: usize,
) -> Result<Deployment, SimError> {
    let graph = class.application(seed);
    let platform = class.platform();
    let (mut all, best) = deploy_best(&graph, &platform, iterations)?;
    Ok(all.swap_remove(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{video_encoder_pipeline, VideoPipelineSpec};

    #[test]
    fn multicore_beats_single_core_on_the_encoder() {
        let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 1);
        let platform = Platform::symmetric_bus("quad", 4, 300e6);
        let single = deploy(&p.graph, &platform, Strategy::SingleCore, 12).unwrap();
        let (all, best) = deploy_best(&p.graph, &platform, 12).unwrap();
        assert!(
            all[best].throughput_hz() > 1.3 * single.throughput_hz(),
            "best {} vs single {}",
            all[best].throughput_hz(),
            single.throughput_hz()
        );
    }

    #[test]
    fn all_strategies_produce_valid_deployments() {
        let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 2);
        let platform = Platform::symmetric_bus("dual", 2, 200e6);
        for s in Strategy::ALL {
            let d = deploy(&p.graph, &platform, s, 4).unwrap();
            assert!(d.throughput_hz() > 0.0, "{s}");
            assert!(d.report.energy().total_j() > 0.0, "{s}");
        }
    }

    #[test]
    fn meets_compares_throughput() {
        let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 3);
        let platform = Platform::symmetric_bus("dual", 2, 200e6);
        let d = deploy(&p.graph, &platform, Strategy::LoadBalanced, 4).unwrap();
        assert!(d.meets(d.throughput_hz() * 0.9));
        assert!(!d.meets(d.throughput_hz() * 1.1));
    }

    #[test]
    fn device_deployment_runs() {
        let d = deploy_device(DeviceClass::AudioPlayer, 4, 8).unwrap();
        assert!(d.throughput_hz() > 0.0);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::PipelineAffine.to_string(), "pipeline-affine");
    }
}
