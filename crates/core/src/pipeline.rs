//! Application pipelines as task graphs.
//!
//! The bridge between the functional crates and the platform simulator:
//! each media pipeline (Figure 1 video encode, Figure 2 audio encode,
//! their decoders, content analysis) is profiled by *running the real
//! kernels* on a short calibration workload, and the measured per-stage
//! operation tallies become [`TaskGraph`] node weights. Mapping
//! experiments therefore use compute ratios that come from the actual
//! code, not hand-waved constants.

use mpsoc::task::{OpCounts, TaskGraph};
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

/// Parameters of a video-encode pipeline instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoPipelineSpec {
    /// Frame width (multiple of 16).
    pub width: usize,
    /// Frame height (multiple of 16).
    pub height: usize,
    /// Encoder configuration (search kind/range, GOP, quality).
    pub config: EncoderConfig,
}

impl Default for VideoPipelineSpec {
    /// CIF 352×288 with the default encoder.
    fn default() -> Self {
        Self {
            width: 352,
            height: 288,
            config: EncoderConfig::default(),
        }
    }
}

/// Calibration output: the graph plus the raw per-frame stage ops.
#[derive(Debug, Clone)]
pub struct CalibratedPipeline {
    /// One iteration of the graph = one frame (or one audio frame).
    pub graph: TaskGraph,
    /// Human-readable per-stage op totals for reporting.
    pub stage_ops: Vec<(String, u64)>,
}

/// Builds the Figure 1 encoder graph with weights measured from a real
/// encode of a small calibration sequence, scaled to the requested
/// resolution.
///
/// Stages (matching the figure): motion estimator → DCT → quantizer →
/// variable-length encode, plus the reconstruction loop (inverse DCT +
/// motion-compensated predictor) feeding back.
///
/// # Panics
///
/// Panics if the spec's dimensions are not multiples of 16 or the encoder
/// configuration is invalid.
#[must_use]
pub fn video_encoder_pipeline(spec: &VideoPipelineSpec, seed: u64) -> CalibratedPipeline {
    // Calibrate on a small sequence with identical encoder settings.
    let (cw, ch, frames) = (64usize, 48usize, 6usize);
    let cal_frames = SequenceGen::new(seed).panning_sequence(cw, ch, frames, 2, 1);
    let encoder = Encoder::new(spec.config).expect("invalid encoder configuration");
    let encoded = encoder
        .encode(&cal_frames)
        .expect("calibration encode failed");
    let t = encoded.tally;
    // Scale measured ops from calibration pixels to target pixels.
    let scale = (spec.width * spec.height) as f64 / (cw * ch) as f64 / frames as f64;
    let s = |v: u64| -> u64 { ((v as f64) * scale).round() as u64 };

    // Frame-sized buffers flow between stages (luma + chroma).
    let frame_bytes = (spec.width * spec.height * 3 / 2) as u64;
    let coeff_bytes = frame_bytes * 2; // 16-bit levels
    let me_ops = s(t.me_pixel_ops);
    let dct_macs = s(t.dct_blocks * 2 * 8 * 8 * 8);
    let idct_macs = s(t.idct_blocks * 2 * 8 * 8 * 8);
    let quant_ops = s(t.quant_coeffs);
    let vlc_ops = s(t.vlc_symbols * 8);
    let mc_ops = s(t.mc_pixels);

    // Motion estimation and the transform are data-parallel across frame
    // slices (as real encoders exploit); entropy coding is serial because
    // the bitstream is one stream.
    const SLICES: usize = 4;
    let mut g = TaskGraph::new("video-encoder");
    let src = g.add_task("capture", OpCounts::new().with_mem(s(t.mc_pixels / 8)), 0);
    let quant = g.add_task("quantizer", OpCounts::new().with_int_alu(quant_ops), 0);
    for slice in 0..SLICES {
        let me = g.add_task(
            format!("motion-estimator-s{slice}"),
            OpCounts::new()
                .with_mac(me_ops / SLICES as u64)
                .with_mem(me_ops / (8 * SLICES as u64)),
            0,
        );
        let dct = g.add_task(
            format!("dct-s{slice}"),
            OpCounts::new().with_mac(dct_macs / SLICES as u64),
            0,
        );
        g.add_edge(src, me, frame_bytes / SLICES as u64)
            .expect("acyclic by construction");
        g.add_edge(me, dct, frame_bytes / SLICES as u64)
            .expect("acyclic by construction");
        g.add_edge(dct, quant, coeff_bytes / SLICES as u64)
            .expect("acyclic by construction");
    }
    let vlc = g.add_task(
        "vlc",
        OpCounts::new().with_control(vlc_ops / 2).with_bit(vlc_ops),
        0,
    );
    let buffer = g.add_task("buffer", OpCounts::new().with_bit(vlc_ops / 4), 0);
    let recon = g.add_task(
        "recon-loop",
        OpCounts::new().with_mac(idct_macs).with_int_alu(mc_ops),
        0,
    );
    g.add_edge(quant, vlc, coeff_bytes)
        .expect("acyclic by construction");
    g.add_edge(vlc, buffer, frame_bytes / 8)
        .expect("acyclic by construction");
    g.add_edge(quant, recon, coeff_bytes)
        .expect("acyclic by construction");

    CalibratedPipeline {
        stage_ops: vec![
            ("motion-estimator".into(), me_ops),
            ("dct".into(), dct_macs),
            ("quantizer".into(), quant_ops),
            ("vlc".into(), vlc_ops),
            ("recon-loop".into(), idct_macs + mc_ops),
        ],
        graph: g,
    }
}

/// Builds the matching decoder graph (VLC decode → inverse quantize →
/// inverse DCT → motion compensation): no motion search, hence the §2
/// encode/decode asymmetry.
#[must_use]
pub fn video_decoder_pipeline(spec: &VideoPipelineSpec, seed: u64) -> CalibratedPipeline {
    let enc = video_encoder_pipeline(spec, seed);
    // Decoder ops mirror the encoder's reconstruction path.
    let find = |name: &str| {
        enc.stage_ops
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let idct = find("dct"); // same transform count as forward
    let vlc = find("vlc");
    let quant = find("quantizer");
    let frame_bytes = (spec.width * spec.height * 3 / 2) as u64;
    let coeff_bytes = frame_bytes * 2;

    let mut g = TaskGraph::new("video-decoder");
    let parse = g.add_task(
        "vlc-decode",
        OpCounts::new().with_control(vlc / 2).with_bit(vlc),
        0,
    );
    let deq = g.add_task("dequantizer", OpCounts::new().with_int_alu(quant), 0);
    let idct_t = g.add_task("inverse-dct", OpCounts::new().with_mac(idct), 0);
    let mc = g.add_task(
        "motion-compensator",
        OpCounts::new()
            .with_int_alu(frame_bytes)
            .with_mem(frame_bytes / 4),
        0,
    );
    let out = g.add_task("display", OpCounts::new().with_mem(frame_bytes / 8), 0);
    g.add_edge(parse, deq, coeff_bytes).expect("acyclic");
    g.add_edge(deq, idct_t, coeff_bytes).expect("acyclic");
    g.add_edge(idct_t, mc, frame_bytes).expect("acyclic");
    g.add_edge(mc, out, frame_bytes).expect("acyclic");

    CalibratedPipeline {
        stage_ops: vec![
            ("vlc-decode".into(), vlc),
            ("dequantizer".into(), quant),
            ("inverse-dct".into(), idct),
            ("motion-compensator".into(), frame_bytes),
        ],
        graph: g,
    }
}

/// Builds the Figure 2 audio encoder graph with weights measured from a
/// real encode: mapper (filterbank) → psychoacoustic model → quantizer →
/// frame packer.
#[must_use]
pub fn audio_encoder_pipeline(seed: u64) -> CalibratedPipeline {
    use audio::encoder::{AudioConfig, AudioEncoder};
    let frames = 4usize;
    let pcm = signal::gen::SignalGen::new(seed).music(
        440.0,
        44_100.0,
        frames * audio::encoder::FRAME_SAMPLES,
    );
    let stream = AudioEncoder::new(AudioConfig::default())
        .encode(&pcm)
        .expect("calibration encode failed");
    let t = stream.tally;
    let per = |v: u64| v / frames as u64;
    let granule_bytes = 32 * 8 * 36u64;

    let mut g = TaskGraph::new("audio-encoder");
    let src = g.add_task("pcm-in", OpCounts::new().with_mem(1152), 0);
    let mapper = g.add_task(
        "mapper",
        OpCounts::new().with_mac(per(t.filterbank_macs)),
        0,
    );
    let psycho = g.add_task(
        "psychoacoustic-model",
        OpCounts::new()
            .with_mac(per(t.psycho_ops))
            .with_control(per(t.psycho_ops) / 8),
        0,
    );
    let quant = g.add_task(
        "quantizer-coder",
        OpCounts::new().with_int_alu(per(t.quant_samples) * 4),
        0,
    );
    let packer = g.add_task(
        "frame-packer",
        OpCounts::new().with_bit(per(t.packed_bits)),
        0,
    );
    g.add_edge(src, mapper, 1152 * 8).expect("acyclic");
    g.add_edge(src, psycho, 1152 * 8).expect("acyclic");
    g.add_edge(mapper, quant, granule_bytes).expect("acyclic");
    g.add_edge(psycho, quant, 32 * 8).expect("acyclic");
    g.add_edge(quant, packer, granule_bytes / 2)
        .expect("acyclic");

    CalibratedPipeline {
        stage_ops: vec![
            ("mapper".into(), per(t.filterbank_macs)),
            ("psychoacoustic-model".into(), per(t.psycho_ops)),
            ("quantizer-coder".into(), per(t.quant_samples) * 4),
            ("frame-packer".into(), per(t.packed_bits)),
        ],
        graph: g,
    }
}

/// Builds the audio *decoder* graph: frame unpack → dequantize →
/// synthesis filterbank. No psychoacoustic model — that is encoder-only,
/// which is exactly why playback devices are so much cheaper than
/// recording ones.
#[must_use]
pub fn audio_decoder_pipeline(seed: u64) -> CalibratedPipeline {
    let enc = audio_encoder_pipeline(seed);
    let find = |name: &str| {
        enc.stage_ops
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    // Synthesis costs the same MACs as analysis; unpack mirrors packing;
    // dequantization mirrors quantization.
    let synth = find("mapper");
    let unpack = find("frame-packer");
    let deq = find("quantizer-coder");
    let granule_bytes = 32 * 8 * 36u64;

    let mut g = TaskGraph::new("audio-decoder");
    let parse = g.add_task("frame-unpack", OpCounts::new().with_bit(unpack), 0);
    let dq = g.add_task("dequantizer", OpCounts::new().with_int_alu(deq), 0);
    let fb = g.add_task("synthesis-filterbank", OpCounts::new().with_mac(synth), 0);
    let out = g.add_task("pcm-out", OpCounts::new().with_mem(1152), 0);
    g.add_edge(parse, dq, granule_bytes / 2).expect("acyclic");
    g.add_edge(dq, fb, granule_bytes).expect("acyclic");
    g.add_edge(fb, out, 1152 * 2).expect("acyclic");

    CalibratedPipeline {
        stage_ops: vec![
            ("frame-unpack".into(), unpack),
            ("dequantizer".into(), deq),
            ("synthesis-filterbank".into(), synth),
        ],
        graph: g,
    }
}

/// Content-analysis graph for a DVR (§5): per frame, black-frame check,
/// histogram, shot compare — cheap relative to the codecs, but present.
#[must_use]
pub fn analysis_pipeline(width: usize, height: usize) -> CalibratedPipeline {
    let pixels = (width * height) as u64;
    let mut g = TaskGraph::new("content-analysis");
    let luma = g.add_task("luma-stats", OpCounts::new().with_int_alu(pixels), 0);
    let hist = g.add_task(
        "histogram",
        OpCounts::new().with_int_alu(pixels).with_mem(64),
        0,
    );
    let detect = g.add_task(
        "break-detector",
        OpCounts::new().with_control(256).with_int_alu(128),
        0,
    );
    g.add_edge(luma, detect, 16).expect("acyclic");
    g.add_edge(hist, detect, 64 * 8).expect("acyclic");
    CalibratedPipeline {
        stage_ops: vec![
            ("luma-stats".into(), pixels),
            ("histogram".into(), pixels),
            ("break-detector".into(), 384),
        ],
        graph: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use video::me::SearchKind;

    #[test]
    fn encoder_graph_matches_figure_1_shape() {
        let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 1);
        let names: Vec<&str> = p.graph.tasks().iter().map(|t| t.name.as_str()).collect();
        for stage in [
            "motion-estimator-s0",
            "dct-s0",
            "quantizer",
            "vlc",
            "buffer",
            "recon-loop",
        ] {
            assert!(names.contains(&stage), "missing stage {stage}");
        }
        assert!(p.graph.topological_order().is_ok());
    }

    #[test]
    fn motion_estimation_dominates_encoder_ops() {
        let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 2);
        let me = p
            .stage_ops
            .iter()
            .find(|(n, _)| n == "motion-estimator")
            .unwrap()
            .1;
        for (name, ops) in &p.stage_ops {
            if name != "motion-estimator" {
                assert!(me > *ops, "{name} ({ops}) out-weighs ME ({me})");
            }
        }
    }

    #[test]
    fn cheap_search_shrinks_me_weight() {
        let full = video_encoder_pipeline(&VideoPipelineSpec::default(), 3);
        let diamond = video_encoder_pipeline(
            &VideoPipelineSpec {
                config: EncoderConfig {
                    search: SearchKind::Diamond,
                    search_range: 7,
                    ..Default::default()
                },
                ..Default::default()
            },
            3,
        );
        let me_of = |p: &CalibratedPipeline| {
            p.stage_ops
                .iter()
                .find(|(n, _)| n == "motion-estimator")
                .unwrap()
                .1
        };
        assert!(me_of(&full) > 5 * me_of(&diamond));
    }

    #[test]
    fn ops_scale_with_resolution() {
        let small = video_encoder_pipeline(
            &VideoPipelineSpec {
                width: 176,
                height: 144,
                ..Default::default()
            },
            4,
        );
        let large = video_encoder_pipeline(&VideoPipelineSpec::default(), 4);
        assert!(
            large.graph.total_ops().total() > 3 * small.graph.total_ops().total(),
            "CIF should be ~4x QCIF"
        );
    }

    #[test]
    fn decoder_is_cheaper_than_encoder() {
        let enc = video_encoder_pipeline(&VideoPipelineSpec::default(), 5);
        let dec = video_decoder_pipeline(&VideoPipelineSpec::default(), 5);
        assert!(
            enc.graph.total_ops().total() > 3 * dec.graph.total_ops().total(),
            "asymmetry missing: enc {} dec {}",
            enc.graph.total_ops().total(),
            dec.graph.total_ops().total()
        );
    }

    #[test]
    fn audio_graph_matches_figure_2_shape() {
        let p = audio_encoder_pipeline(6);
        let names: Vec<&str> = p.graph.tasks().iter().map(|t| t.name.as_str()).collect();
        for stage in [
            "mapper",
            "psychoacoustic-model",
            "quantizer-coder",
            "frame-packer",
        ] {
            assert!(names.contains(&stage), "missing stage {stage}");
        }
        // Mapper + psycho dominate (the paper's compute story for audio).
        let get = |n: &str| p.stage_ops.iter().find(|(x, _)| x == n).unwrap().1;
        assert!(get("mapper") + get("psychoacoustic-model") > get("quantizer-coder"));
    }

    #[test]
    fn analysis_pipeline_is_light() {
        let a = analysis_pipeline(352, 288);
        let v = video_encoder_pipeline(&VideoPipelineSpec::default(), 7);
        assert!(a.graph.total_ops().total() * 10 < v.graph.total_ops().total());
    }
}
