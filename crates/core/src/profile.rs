//! Device profiles — the §2 consumer device classes as runnable
//! workload/platform pairs.
//!
//! *"consumer multimedia devices cover a broad range of
//! cost/performance/power points: multimedia-enabled cell phones, digital
//! audio players, digital set-top boxes, digital video recorders, digital
//! video cameras."* Each [`DeviceClass`] pairs an application task graph
//! (built from the calibrated pipelines) with the matching platform
//! preset, plus the real-time target the device must meet.

use mpsoc::platform::Platform;
use mpsoc::task::TaskGraph;
use video::encoder::EncoderConfig;
use video::me::SearchKind;

use crate::pipeline::{
    analysis_pipeline, audio_decoder_pipeline, video_decoder_pipeline, video_encoder_pipeline,
    VideoPipelineSpec,
};

/// The five §2 consumer device classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Multimedia-enabled cell phone: low-resolution symmetric video call.
    CellPhone,
    /// Digital audio player: audio decode only.
    AudioPlayer,
    /// Digital set-top box: broadcast video + audio decode.
    SetTopBox,
    /// Digital video recorder: encode + decode + content analysis.
    VideoRecorder,
    /// Digital video camera: encode-heavy.
    VideoCamera,
}

impl DeviceClass {
    /// All classes, in the paper's order.
    pub const ALL: [DeviceClass; 5] = [
        DeviceClass::CellPhone,
        DeviceClass::AudioPlayer,
        DeviceClass::SetTopBox,
        DeviceClass::VideoRecorder,
        DeviceClass::VideoCamera,
    ];

    /// The platform preset for this class.
    #[must_use]
    pub fn platform(self) -> Platform {
        match self {
            DeviceClass::CellPhone => Platform::cell_phone(),
            DeviceClass::AudioPlayer => Platform::audio_player(),
            DeviceClass::SetTopBox => Platform::set_top_box(),
            DeviceClass::VideoRecorder => Platform::video_recorder(),
            DeviceClass::VideoCamera => Platform::video_camera(),
        }
    }

    /// Iterations (frames) per second the device must sustain.
    #[must_use]
    pub fn realtime_target_hz(self) -> f64 {
        match self {
            DeviceClass::CellPhone => 15.0,   // video call frame rate
            DeviceClass::AudioPlayer => 38.3, // 1152-sample frames at 44.1 kHz
            DeviceClass::SetTopBox => 30.0,
            DeviceClass::VideoRecorder => 30.0,
            DeviceClass::VideoCamera => 30.0,
        }
    }

    /// The application task graph (one iteration = one frame).
    #[must_use]
    pub fn application(self, seed: u64) -> TaskGraph {
        match self {
            DeviceClass::CellPhone => {
                // Symmetric videoconference at QCIF with cheap search (§2).
                let spec = VideoPipelineSpec {
                    width: 176,
                    height: 144,
                    config: EncoderConfig {
                        search: SearchKind::Diamond,
                        search_range: 7,
                        gop: 8,
                        ..Default::default()
                    },
                };
                let enc = video_encoder_pipeline(&spec, seed).graph;
                let dec = video_decoder_pipeline(&spec, seed).graph;
                merge_graphs("cell-phone-call", &[enc, dec])
            }
            DeviceClass::AudioPlayer => {
                // Decode-only: unpack -> dequantize -> synthesis filterbank.
                relabel(audio_decoder_pipeline(seed).graph, "audio-player")
            }
            DeviceClass::SetTopBox => {
                let spec = VideoPipelineSpec::default();
                let vdec = video_decoder_pipeline(&spec, seed).graph;
                let adec = audio_decoder_pipeline(seed).graph;
                merge_graphs("set-top-box", &[vdec, adec])
            }
            DeviceClass::VideoRecorder => {
                // Consumer encoder silicon never runs exhaustive search at
                // CIF/30; a fast logarithmic search is the historically
                // accurate choice.
                let spec = VideoPipelineSpec {
                    config: EncoderConfig {
                        search: SearchKind::ThreeStep,
                        search_range: 15,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let enc = video_encoder_pipeline(&spec, seed).graph;
                let dec = video_decoder_pipeline(&spec, seed).graph;
                let ana = analysis_pipeline(spec.width, spec.height).graph;
                merge_graphs("video-recorder", &[enc, dec, ana])
            }
            DeviceClass::VideoCamera => {
                let spec = VideoPipelineSpec {
                    config: EncoderConfig {
                        search: SearchKind::ThreeStep,
                        search_range: 15,
                        gop: 15,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                video_encoder_pipeline(&spec, seed).graph
            }
        }
    }
}

impl core::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            DeviceClass::CellPhone => "cell-phone",
            DeviceClass::AudioPlayer => "audio-player",
            DeviceClass::SetTopBox => "set-top-box",
            DeviceClass::VideoRecorder => "video-recorder",
            DeviceClass::VideoCamera => "video-camera",
        })
    }
}

/// Concatenates independent graphs into one (disjoint union), renaming
/// the result.
#[must_use]
pub fn merge_graphs(name: &str, graphs: &[TaskGraph]) -> TaskGraph {
    let mut out = TaskGraph::new(name);
    for g in graphs {
        let offset = out.task_count();
        for t in g.tasks() {
            out.add_task(format!("{}:{}", g.name(), t.name), t.ops, t.state_bytes);
        }
        for e in g.edges() {
            out.add_edge(
                mpsoc::task::TaskId(e.from.0 + offset),
                mpsoc::task::TaskId(e.to.0 + offset),
                e.bytes,
            )
            .expect("disjoint union preserves acyclicity");
        }
    }
    out
}

fn relabel(g: TaskGraph, name: &str) -> TaskGraph {
    merge_graphs(name, &[g])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_builds_a_valid_application() {
        for class in DeviceClass::ALL {
            let g = class.application(1);
            assert!(g.task_count() > 0, "{class}");
            assert!(g.topological_order().is_ok(), "{class}");
            assert!(class.platform().pe_count() >= 2, "{class}");
            assert!(class.realtime_target_hz() > 0.0);
        }
    }

    #[test]
    fn recorder_workload_is_heaviest() {
        let dvr = DeviceClass::VideoRecorder
            .application(2)
            .total_ops()
            .total();
        for class in [DeviceClass::CellPhone, DeviceClass::AudioPlayer] {
            let other = class.application(2).total_ops().total();
            assert!(dvr > other, "{class} should be lighter than the DVR");
        }
    }

    #[test]
    fn audio_player_is_lightest() {
        let player = DeviceClass::AudioPlayer.application(3).total_ops().total();
        for class in [
            DeviceClass::SetTopBox,
            DeviceClass::VideoRecorder,
            DeviceClass::VideoCamera,
        ] {
            assert!(class.application(3).total_ops().total() > player);
        }
    }

    #[test]
    fn merge_preserves_structure() {
        let a = DeviceClass::VideoCamera.application(4);
        let merged = merge_graphs("two-cameras", &[a.clone(), a.clone()]);
        assert_eq!(merged.task_count(), 2 * a.task_count());
        assert_eq!(merged.edge_count(), 2 * a.edge_count());
        assert!(merged.topological_order().is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::SetTopBox.to_string(), "set-top-box");
    }
}
