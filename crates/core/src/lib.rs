//! # `mmsoc` — multimedia applications on multiprocessor systems-on-chips
//!
//! The top of the mm-mpsoc workspace, reproducing Wolf, *Multimedia
//! Applications of Multiprocessor Systems-on-Chips* (DATE 2005). The
//! functional crates implement the paper's systems (video, audio,
//! analysis, DRM, file system, network, servo); this crate puts them *on
//! the chip*:
//!
//! * [`pipeline`] — the paper's block diagrams as task graphs whose node
//!   weights are **measured from the real kernels** (calibration encodes,
//!   not guesses).
//! * [`profile`] — the five §2 consumer device classes as
//!   application/platform pairs with real-time targets.
//! * [`deploy`] — mapping strategies and streaming deployment on the
//!   [`mpsoc`] simulator.
//! * [`report`] — the text tables every experiment binary prints.
//!
//! # Example
//!
//! ```
//! use mmsoc::deploy::{deploy, Strategy};
//! use mmsoc::pipeline::{video_encoder_pipeline, VideoPipelineSpec};
//! use mpsoc::platform::Platform;
//!
//! let pipeline = video_encoder_pipeline(&VideoPipelineSpec::default(), 42);
//! let platform = Platform::symmetric_bus("quad", 4, 300e6);
//! let single = deploy(&pipeline.graph, &platform, Strategy::SingleCore, 8)?;
//! let piped = deploy(&pipeline.graph, &platform, Strategy::PipelineAffine, 8)?;
//! assert!(piped.throughput_hz() >= single.throughput_hz());
//! # Ok::<(), mpsoc::sched::SimError>(())
//! ```

pub mod deploy;
pub mod pipeline;
pub mod profile;
pub mod report;

pub use deploy::{deploy, deploy_best, deploy_device, Deployment, Strategy};
pub use pipeline::{
    analysis_pipeline, audio_decoder_pipeline, audio_encoder_pipeline, video_decoder_pipeline,
    video_encoder_pipeline, CalibratedPipeline, VideoPipelineSpec,
};
pub use profile::DeviceClass;
pub use report::Table;
