//! Plain-text table rendering for experiment harnesses.
//!
//! Every `exp_*` binary prints its rows through this module so
//! EXPERIMENTS.md and the bench logs share one format.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment and a separator line.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}", c, w = width[i]));
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with the given precision (helper for experiment rows).
#[must_use]
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a large count with thousands separators.
#[must_use]
pub fn count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "value" header starts at same offset as data col 2.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][off..off + 5], "12345");
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(1), "1");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(1_234_567), "1,234,567");
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
