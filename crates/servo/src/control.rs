//! Servo controllers: filtered PID and lead–lag compensation.
//!
//! These are the §7 "complex digital filters": a PID with a first-order
//! low-pass on the derivative term (raw derivatives amplify surface
//! noise), optionally cascaded with a lead–lag section built on the
//! shared biquad primitive.

use signal::filter::Biquad;

/// A position controller: error in, actuator command out.
pub trait Controller {
    /// Processes one error sample.
    fn step(&mut self, error: f64) -> f64;

    /// Clears internal state.
    fn reset(&mut self);
}

/// PID gains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidGains {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second).
    pub ki: f64,
    /// Derivative gain (seconds).
    pub kd: f64,
}

/// A PID controller with filtered derivative and anti-windup clamping.
#[derive(Debug, Clone)]
pub struct Pid {
    gains: PidGains,
    dt: f64,
    integral: f64,
    integral_limit: f64,
    prev_error: f64,
    /// One-pole low-pass state for the derivative.
    d_state: f64,
    /// Derivative filter coefficient (0..1, higher = less filtering).
    d_alpha: f64,
}

impl Pid {
    /// Creates a PID at the given sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive.
    #[must_use]
    pub fn new(gains: PidGains, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            gains,
            dt: 1.0 / sample_rate_hz,
            integral: 0.0,
            integral_limit: 1e6,
            prev_error: 0.0,
            d_state: 0.0,
            d_alpha: 0.2,
        }
    }

    /// Sets the anti-windup clamp on the integral term.
    #[must_use]
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        self.integral_limit = limit.abs();
        self
    }

    /// The gains.
    #[must_use]
    pub fn gains(&self) -> PidGains {
        self.gains
    }
}

impl Controller for Pid {
    fn step(&mut self, error: f64) -> f64 {
        self.integral =
            (self.integral + error * self.dt).clamp(-self.integral_limit, self.integral_limit);
        let raw_d = (error - self.prev_error) / self.dt;
        self.prev_error = error;
        self.d_state += self.d_alpha * (raw_d - self.d_state);
        self.gains.kp * error + self.gains.ki * self.integral + self.gains.kd * self.d_state
    }

    fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = 0.0;
        self.d_state = 0.0;
    }
}

/// A lead–lag compensator cascaded after a PID — adds phase margin near
/// the mechanism resonance.
#[derive(Debug, Clone)]
pub struct LeadLagPid {
    pid: Pid,
    shaper: Biquad,
}

impl LeadLagPid {
    /// Creates the cascade: the biquad is a high-pass-ish lead section
    /// centred at `lead_freq` (fraction of the sample rate).
    ///
    /// # Panics
    ///
    /// Panics if `lead_freq` is outside `(0, 0.5)`.
    #[must_use]
    pub fn new(gains: PidGains, sample_rate_hz: f64, lead_freq: f64) -> Self {
        Self {
            pid: Pid::new(gains, sample_rate_hz),
            shaper: Biquad::highpass(lead_freq, 0.9),
        }
    }
}

impl Controller for LeadLagPid {
    fn step(&mut self, error: f64) -> f64 {
        let u = self.pid.step(error);
        // Blend direct and lead-shaped paths.
        u + 0.5 * self.shaper.step(u)
    }

    fn reset(&mut self) {
        self.pid.reset();
        self.shaper.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_scales_error() {
        let mut pid = Pid::new(
            PidGains {
                kp: 3.0,
                ki: 0.0,
                kd: 0.0,
            },
            1000.0,
        );
        assert!((pid.step(2.0) - 6.0).abs() < 1e-12);
        assert!((pid.step(-1.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(
            PidGains {
                kp: 0.0,
                ki: 1.0,
                kd: 0.0,
            },
            100.0,
        );
        let mut out = 0.0;
        for _ in 0..100 {
            out = pid.step(1.0);
        }
        // 100 samples at dt=0.01 integrates 1.0.
        assert!((out - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anti_windup_clamps() {
        let mut pid = Pid::new(
            PidGains {
                kp: 0.0,
                ki: 1.0,
                kd: 0.0,
            },
            100.0,
        )
        .with_integral_limit(0.5);
        for _ in 0..1000 {
            pid.step(10.0);
        }
        assert!(pid.step(0.0) <= 0.5 + 1e-12);
    }

    #[test]
    fn derivative_responds_to_change_and_is_filtered() {
        let mut pid = Pid::new(
            PidGains {
                kp: 0.0,
                ki: 0.0,
                kd: 1.0,
            },
            1000.0,
        );
        let first = pid.step(1.0); // step change
        assert!(first > 0.0);
        // Filtered derivative: first response is less than the raw slope.
        assert!(first < 1000.0, "derivative unfiltered: {first}");
        // Steady error: derivative decays toward zero.
        let mut last = first;
        for _ in 0..100 {
            last = pid.step(1.0);
        }
        assert!(last.abs() < first / 10.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(
            PidGains {
                kp: 1.0,
                ki: 10.0,
                kd: 1.0,
            },
            1000.0,
        );
        for _ in 0..100 {
            pid.step(1.0);
        }
        pid.reset();
        let mut fresh = Pid::new(
            PidGains {
                kp: 1.0,
                ki: 10.0,
                kd: 1.0,
            },
            1000.0,
        );
        assert!((pid.step(0.5) - fresh.step(0.5)).abs() < 1e-12);
    }

    #[test]
    fn leadlag_tracks_pid_at_dc() {
        let gains = PidGains {
            kp: 2.0,
            ki: 0.0,
            kd: 0.0,
        };
        let mut plain = Pid::new(gains, 10_000.0);
        let mut lead = LeadLagPid::new(gains, 10_000.0, 0.05);
        // Constant error: the lead section (a high-pass) contributes ~0 in
        // steady state.
        let mut p = 0.0;
        let mut l = 0.0;
        for _ in 0..10_000 {
            p = plain.step(1.0);
            l = lead.step(1.0);
        }
        assert!(
            (p - l).abs() < 0.05 * p.abs(),
            "lead-lag DC mismatch {p} vs {l}"
        );
    }
}
