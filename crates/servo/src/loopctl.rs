//! Closed-loop execution and mechanism-adaptive tuning.
//!
//! [`run_loop`] drives plant + controller at the servo rate and scores
//! tracking; [`adapt_gains`] implements the paper's point that *"the
//! control laws are generally adapted to the particular mechanism being
//! used"*: it probes the mechanism, scales a gain template by the
//! measured stiffness, and refines with a small search — so the same
//! firmware tunes itself to nominal, stiff, and loose mechanisms (E15).

use crate::control::{Controller, Pid, PidGains};
use crate::plant::{Mechanism, Plant, Runout};

/// Result of a closed-loop tracking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingReport {
    /// Root-mean-square tracking error.
    pub rms_error: f64,
    /// Worst absolute error after settling.
    pub peak_error: f64,
    /// RMS of the runout itself (for normalization).
    pub rms_runout: f64,
}

impl TrackingReport {
    /// Error attenuation: runout RMS over error RMS (higher = better).
    #[must_use]
    pub fn attenuation(&self) -> f64 {
        if self.rms_error > 0.0 {
            self.rms_runout / self.rms_error
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the servo loop for `samples` steps at `sample_rate_hz`, tracking
/// the given runout on the given mechanism. The first quarter of the run
/// is treated as settling and excluded from scoring.
pub fn run_loop(
    mech: Mechanism,
    controller: &mut dyn Controller,
    sample_rate_hz: f64,
    samples: usize,
    runout_seed: u64,
) -> TrackingReport {
    let mut plant = Plant::new(mech, sample_rate_hz);
    let mut runout = Runout::new(25.0, 1.0, 0.002, sample_rate_hz, runout_seed);
    let settle = samples / 4;
    let mut err_sq = 0.0;
    let mut ref_sq = 0.0;
    let mut peak = 0.0f64;
    let mut y = 0.0;
    for i in 0..samples {
        let r = runout.next_sample();
        let e = r - y;
        let u = controller.step(e);
        y = plant.step(u);
        if i >= settle {
            err_sq += e * e;
            ref_sq += r * r;
            peak = peak.max(e.abs());
        }
    }
    let n = (samples - settle) as f64;
    TrackingReport {
        rms_error: (err_sq / n).sqrt(),
        peak_error: peak,
        rms_runout: (ref_sq / n).sqrt(),
    }
}

/// A gain template tuned for the nominal mechanism, used directly as the
/// "fixed firmware" baseline.
#[must_use]
pub fn nominal_gains() -> PidGains {
    PidGains {
        kp: 200_000.0,
        ki: 10_000_000.0,
        kd: 20_000.0,
    }
}

/// Probes the mechanism (steady push) to estimate its DC stiffness, then
/// scales the nominal gain template accordingly and refines `kp`/`kd`
/// with a coarse search on a short calibration run.
#[must_use]
pub fn adapt_gains(mech: Mechanism, sample_rate_hz: f64) -> PidGains {
    // --- Probe: steady actuation, observe settled deflection.
    let mut plant = Plant::new(mech, sample_rate_hz);
    let probe_u = 100.0;
    let mut y = 0.0;
    for _ in 0..(sample_rate_hz as usize) {
        y = plant.step(probe_u);
    }
    // Estimated stiffness/gain ratio; nominal mechanism gives ~4000.
    let k_est = if y.abs() > 1e-12 { probe_u / y } else { 4000.0 };
    let scale = k_est / 4000.0;
    let base = nominal_gains();
    let scaled = PidGains {
        kp: base.kp * scale,
        ki: base.ki * scale,
        kd: base.kd * scale,
    };
    // --- Refine: multiplicative grid around both the stiffness-scaled
    // template and the unscaled one (the scale estimate can overshoot on
    // strongly off-nominal mechanisms).
    let mut best = scaled;
    let mut best_rms = f64::INFINITY;
    for template in [scaled, base] {
        for kp_mul in [0.5, 1.0, 2.0, 4.0] {
            for ki_mul in [0.25, 1.0] {
                for kd_mul in [0.5, 1.0, 2.0] {
                    let candidate = PidGains {
                        kp: template.kp * kp_mul,
                        ki: template.ki * ki_mul,
                        kd: template.kd * kd_mul,
                    };
                    let mut pid = Pid::new(candidate, sample_rate_hz);
                    let report = run_loop(mech, &mut pid, sample_rate_hz, 20_000, 999);
                    if report.rms_error < best_rms {
                        best_rms = report.rms_error;
                        best = candidate;
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 50_000.0;

    #[test]
    fn nominal_controller_tracks_nominal_mechanism() {
        let mut pid = Pid::new(nominal_gains(), FS);
        let r = run_loop(Mechanism::nominal(), &mut pid, FS, 100_000, 1);
        assert!(
            r.attenuation() > 10.0,
            "nominal tracking too weak: attenuation {:.1}",
            r.attenuation()
        );
    }

    #[test]
    fn open_loop_tracks_nothing() {
        /// A null controller: no actuation at all.
        struct Null;
        impl Controller for Null {
            fn step(&mut self, _: f64) -> f64 {
                0.0
            }
            fn reset(&mut self) {}
        }
        let r = run_loop(Mechanism::nominal(), &mut Null, FS, 50_000, 2);
        assert!(r.attenuation() < 1.5, "open loop cannot attenuate runout");
    }

    #[test]
    fn fixed_gains_degrade_on_off_nominal_mechanisms() {
        let mut pid_nom = Pid::new(nominal_gains(), FS);
        let nominal = run_loop(Mechanism::nominal(), &mut pid_nom, FS, 100_000, 3);
        for mech in [Mechanism::stiff(), Mechanism::loose()] {
            let mut pid = Pid::new(nominal_gains(), FS);
            let r = run_loop(mech, &mut pid, FS, 100_000, 3);
            assert!(
                r.rms_error > 1.3 * nominal.rms_error,
                "fixed law should degrade off-nominal: {} vs nominal {}",
                r.rms_error,
                nominal.rms_error
            );
        }
    }

    #[test]
    fn adapted_gains_recover_off_nominal_mechanisms() {
        for mech in [Mechanism::stiff(), Mechanism::loose()] {
            let fixed_report = {
                let mut pid = Pid::new(nominal_gains(), FS);
                run_loop(mech, &mut pid, FS, 100_000, 4)
            };
            let adapted = adapt_gains(mech, FS);
            let adapted_report = {
                let mut pid = Pid::new(adapted, FS);
                run_loop(mech, &mut pid, FS, 100_000, 4)
            };
            assert!(
                adapted_report.rms_error < fixed_report.rms_error,
                "adaptation must beat the fixed law: {} vs {}",
                adapted_report.rms_error,
                fixed_report.rms_error
            );
            assert!(
                adapted_report.attenuation() > 8.0,
                "adapted law should track well (attenuation {:.1})",
                adapted_report.attenuation()
            );
        }
    }

    #[test]
    fn adaptation_estimates_scale_with_stiffness() {
        let nominal = adapt_gains(Mechanism::nominal(), FS);
        let stiff = adapt_gains(Mechanism::stiff(), FS);
        assert!(
            stiff.kp > nominal.kp,
            "stiffer mechanism needs more gain: {} vs {}",
            stiff.kp,
            nominal.kp
        );
    }

    #[test]
    fn report_attenuation_math() {
        let r = TrackingReport {
            rms_error: 0.1,
            peak_error: 0.3,
            rms_runout: 1.0,
        };
        assert!((r.attenuation() - 10.0).abs() < 1e-12);
    }
}
