//! # `servo` — drive servo control per Wolf's §7
//!
//! *"Unlike magnetic disk drives, who bundle their control with the
//! drive, DVD recorders and players must control their drives using
//! complex digital filters. The control requires real-time processing at
//! high rates and the control laws are generally adapted to the
//! particular mechanism being used."*
//!
//! * [`plant`] — the mechanism: a resonant mass–spring–damper pickup
//!   with disc-runout disturbance.
//! * [`control`] — the digital filters: filtered-derivative PID and a
//!   lead–lag cascade.
//! * [`loopctl`] — the 50 kHz closed loop, tracking metrics, and the
//!   mechanism-adaptive tuner (experiment E15).
//!
//! # Example
//!
//! ```
//! use servo::control::Pid;
//! use servo::loopctl::{adapt_gains, run_loop};
//! use servo::plant::Mechanism;
//!
//! let mech = Mechanism::loose(); // an off-nominal drive
//! let gains = adapt_gains(mech, 50_000.0);
//! let mut pid = Pid::new(gains, 50_000.0);
//! let report = run_loop(mech, &mut pid, 50_000.0, 50_000, 1);
//! assert!(report.attenuation() > 5.0);
//! ```

pub mod control;
pub mod loopctl;
pub mod plant;

pub use control::{Controller, LeadLagPid, Pid, PidGains};
pub use loopctl::{adapt_gains, run_loop, TrackingReport};
pub use plant::{Mechanism, Plant, Runout};
