//! The drive mechanism: a second-order resonant plant with disc runout.
//!
//! Paper §7: *"DVD recorders and players must control their drives using
//! complex digital filters. The control requires real-time processing at
//! high rates and the control laws are generally adapted to the
//! particular mechanism being used."* The pickup sled is modelled as a
//! mass–spring–damper driven by the actuator force; the reference the
//! servo must track is the disc's periodic runout (eccentricity) plus
//! surface noise.

use signal::rng::Xoroshiro128;

/// Physical parameters of one mechanism (normalized units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mechanism {
    /// Moving mass.
    pub mass: f64,
    /// Suspension stiffness.
    pub stiffness: f64,
    /// Viscous damping.
    pub damping: f64,
    /// Actuator gain (force per unit command).
    pub actuator_gain: f64,
}

impl Mechanism {
    /// The nominal production mechanism.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            mass: 1.0,
            stiffness: 4000.0,
            damping: 3.0,
            actuator_gain: 1.0,
        }
    }

    /// A stiffer-suspension variant: resonance well above the runout
    /// band, so the same actuator authority buys less displacement.
    #[must_use]
    pub fn stiff() -> Self {
        Self {
            stiffness: 60_000.0,
            damping: 6.0,
            ..Self::nominal()
        }
    }

    /// A looser, heavier variant (lower resonance, weaker actuator).
    #[must_use]
    pub fn loose() -> Self {
        Self {
            mass: 2.0,
            stiffness: 1000.0,
            damping: 1.5,
            actuator_gain: 0.6,
        }
    }

    /// Natural (resonance) frequency in rad/s.
    #[must_use]
    pub fn natural_freq(&self) -> f64 {
        (self.stiffness / self.mass).sqrt()
    }

    /// Damping ratio.
    #[must_use]
    pub fn damping_ratio(&self) -> f64 {
        self.damping / (2.0 * (self.stiffness * self.mass).sqrt())
    }
}

/// The simulated plant: mechanism state advanced by semi-implicit Euler.
#[derive(Debug, Clone)]
pub struct Plant {
    mech: Mechanism,
    dt: f64,
    position: f64,
    velocity: f64,
}

impl Plant {
    /// Creates a plant at rest.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive.
    #[must_use]
    pub fn new(mech: Mechanism, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            mech,
            dt: 1.0 / sample_rate_hz,
            position: 0.0,
            velocity: 0.0,
        }
    }

    /// The mechanism parameters.
    #[must_use]
    pub fn mechanism(&self) -> &Mechanism {
        &self.mech
    }

    /// Current pickup position.
    #[must_use]
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Advances one sample under actuator command `u`, returning the new
    /// position.
    pub fn step(&mut self, u: f64) -> f64 {
        let force = self.mech.actuator_gain * u
            - self.mech.stiffness * self.position
            - self.mech.damping * self.velocity;
        let accel = force / self.mech.mass;
        self.velocity += accel * self.dt;
        self.position += self.velocity * self.dt;
        self.position
    }

    /// Resets the state to rest.
    pub fn reset(&mut self) {
        self.position = 0.0;
        self.velocity = 0.0;
    }
}

/// Disc runout reference generator: eccentricity sinusoid at the spindle
/// rate plus a second harmonic and surface noise.
#[derive(Debug, Clone)]
pub struct Runout {
    /// Spindle rotation frequency in Hz.
    pub spindle_hz: f64,
    /// Eccentricity amplitude.
    pub amplitude: f64,
    /// Surface-noise standard deviation.
    pub noise: f64,
    rng: Xoroshiro128,
    sample_rate_hz: f64,
    t: u64,
}

impl Runout {
    /// Creates a runout generator.
    #[must_use]
    pub fn new(
        spindle_hz: f64,
        amplitude: f64,
        noise: f64,
        sample_rate_hz: f64,
        seed: u64,
    ) -> Self {
        Self {
            spindle_hz,
            amplitude,
            noise,
            rng: Xoroshiro128::new(seed),
            sample_rate_hz,
            t: 0,
        }
    }

    /// The next reference position sample.
    pub fn next_sample(&mut self) -> f64 {
        let t = self.t as f64 / self.sample_rate_hz;
        self.t += 1;
        let w = core::f64::consts::TAU * self.spindle_hz * t;
        self.amplitude * w.sin()
            + 0.2 * self.amplitude * (2.0 * w + 0.7).sin()
            + self.rng.normal_with(0.0, self.noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonance_formulas() {
        let m = Mechanism::nominal();
        assert!((m.natural_freq() - 4000.0f64.sqrt()).abs() < 1e-9);
        assert!(
            m.damping_ratio() > 0.0 && m.damping_ratio() < 1.0,
            "underdamped"
        );
        assert!(Mechanism::stiff().natural_freq() > m.natural_freq());
        assert!(Mechanism::loose().natural_freq() < m.natural_freq());
    }

    #[test]
    fn unforced_plant_stays_at_rest() {
        let mut p = Plant::new(Mechanism::nominal(), 50_000.0);
        for _ in 0..1000 {
            assert_eq!(p.step(0.0), 0.0);
        }
    }

    #[test]
    fn constant_force_settles_at_spring_balance() {
        let mech = Mechanism::nominal();
        let mut p = Plant::new(mech, 50_000.0);
        let u = 100.0;
        for _ in 0..500_000 {
            p.step(u);
        }
        // Steady state: k x = gain * u.
        let expect = mech.actuator_gain * u / mech.stiffness;
        assert!(
            (p.position() - expect).abs() < 0.05 * expect,
            "settled at {} vs {expect}",
            p.position()
        );
    }

    #[test]
    fn impulse_rings_at_the_natural_frequency() {
        let mech = Mechanism::nominal();
        let fs = 50_000.0;
        let mut p = Plant::new(mech, fs);
        p.step(5_000.0); // kick
                         // Count zero crossings over one second.
        let mut crossings = 0;
        let mut prev = p.position();
        for _ in 0..fs as usize {
            let x = p.step(0.0);
            if (prev >= 0.0) != (x >= 0.0) {
                crossings += 1;
            }
            prev = x;
        }
        let measured_hz = crossings as f64 / 2.0;
        let expect_hz = mech.natural_freq() / core::f64::consts::TAU;
        assert!(
            (measured_hz - expect_hz).abs() < 0.15 * expect_hz,
            "rang at {measured_hz} Hz, expected {expect_hz} Hz"
        );
    }

    #[test]
    fn damping_decays_oscillation() {
        let mut p = Plant::new(Mechanism::nominal(), 50_000.0);
        p.step(5_000.0);
        let early: f64 = (0..1000).map(|_| p.step(0.0).abs()).fold(0.0, f64::max);
        for _ in 0..100_000 {
            p.step(0.0);
        }
        let late: f64 = (0..1000).map(|_| p.step(0.0).abs()).fold(0.0, f64::max);
        assert!(
            late < early / 10.0,
            "oscillation failed to decay: {early} -> {late}"
        );
    }

    #[test]
    fn runout_is_periodic_with_noise() {
        let fs = 50_000.0;
        let mut r = Runout::new(25.0, 1.0, 0.0, fs, 1);
        let period = (fs / 25.0) as usize;
        let a: Vec<f64> = (0..period).map(|_| r.next_sample()).collect();
        let b: Vec<f64> = (0..period).map(|_| r.next_sample()).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "noiseless runout must repeat");
        }
        assert!(a.iter().fold(0.0f64, |m, &v| m.max(v.abs())) > 0.9);
    }

    #[test]
    fn reset_zeroes_state() {
        let mut p = Plant::new(Mechanism::nominal(), 10_000.0);
        p.step(100.0);
        p.reset();
        assert_eq!(p.position(), 0.0);
    }
}
