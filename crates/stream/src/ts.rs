//! Transport mux/demux: fixed-188-byte TS-style packets.
//!
//! Wolf §7 frames consumer MPSoCs as networked media devices; the wire
//! format between the encoder and a viewer is this module. It is
//! *TS-shaped*, not ISO 13818-1 conformant (DESIGN.md §5 spirit): the
//! fixed 188-byte packet, 13-bit PIDs, a payload-unit-start flag, and a
//! 4-bit continuity counter are kept, while the adaptation-field zoo is
//! replaced by an explicit payload length, stuffing bytes, and a CRC-32
//! over header+payload so corruption is detectable per packet.
//!
//! Units (access units / elementary-stream chunks) are carried as a
//! 4-byte big-endian length followed by the unit bytes, starting in a
//! packet whose PUSI flag is set. The demux reassembles units per PID,
//! verifies CRCs, and detects continuity gaps — a gap or CRC failure
//! discards the damaged unit (concealment happens a layer up, in the
//! session's playout logic).

use std::collections::BTreeMap;

/// Every packet is exactly this long.
pub const TS_PACKET_LEN: usize = 188;
/// First byte of every packet.
pub const TS_SYNC: u8 = 0x47;
/// Header bytes: sync(1) + pusi/pid(2) + cc(1) + len(1) + crc32(4).
pub const TS_HEADER_LEN: usize = 9;
/// Payload bytes a packet can carry.
pub const TS_PAYLOAD_MAX: usize = TS_PACKET_LEN - TS_HEADER_LEN;
/// Highest valid PID (13 bits).
pub const PID_MAX: u16 = 0x1FFF;
/// The null/stuffing PID (like ISO 13818-1's 0x1FFF): packets on this
/// PID pad the stream to constant bitrate and carry no payload units.
/// Their continuity counters are meaningless and the demux ignores them
/// entirely — dropping or reordering stuffing never reports a gap.
pub const STUFFING_PID: u16 = PID_MAX;

/// PID carrying the per-segment frame index unit.
pub const META_PID: u16 = 0x0020;
/// PID carrying the video elementary stream.
pub const VIDEO_PID: u16 = 0x0100;
/// PID carrying the audio elementary stream.
pub const AUDIO_PID: u16 = 0x0101;

/// One wire packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsPacket {
    /// The 188 wire bytes.
    pub bytes: [u8; TS_PACKET_LEN],
}

impl TsPacket {
    /// The packet's PID.
    #[must_use]
    pub fn pid(&self) -> u16 {
        (u16::from(self.bytes[1] & 0x1F) << 8) | u16::from(self.bytes[2])
    }

    /// Whether this packet starts a payload unit.
    #[must_use]
    pub fn pusi(&self) -> bool {
        self.bytes[1] & 0x80 != 0
    }

    /// The packet's continuity counter.
    #[must_use]
    pub fn continuity(&self) -> u8 {
        self.bytes[3] >> 4
    }
}

const CRC_POLY: u32 = 0xEDB8_8320; // reflected IEEE 802.3

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// The packetizer: tracks one continuity counter per PID.
#[derive(Debug, Clone, Default)]
pub struct TsMux {
    counters: BTreeMap<u16, u8>,
    packets_emitted: u64,
}

impl TsMux {
    /// A fresh mux with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn packets_emitted(&self) -> u64 {
        self.packets_emitted
    }

    /// Starts `pid`'s continuity counter at an arbitrary value — a mux
    /// joining a stream mid-flight (splice, failover) does not begin at
    /// zero. The demux must accept any initial counter without reporting
    /// a gap.
    ///
    /// # Panics
    ///
    /// Panics if `pid` exceeds 13 bits or `cc` exceeds 4 bits.
    pub fn set_continuity(&mut self, pid: u16, cc: u8) {
        assert!(pid <= PID_MAX, "pid {pid:#x} exceeds 13 bits");
        assert!(cc <= 0x0F, "continuity counter {cc} exceeds 4 bits");
        self.counters.insert(pid, cc);
    }

    /// Emits one null packet on [`STUFFING_PID`]: constant-bitrate
    /// padding carrying no payload. Stuffing does not advance any
    /// continuity counter, so inserting or dropping it anywhere in a
    /// stream is invisible to gap detection.
    pub fn stuffing_packet(&mut self) -> TsPacket {
        let mut bytes = [0xFFu8; TS_PACKET_LEN];
        bytes[0] = TS_SYNC;
        bytes[1] = (STUFFING_PID >> 8) as u8 & 0x1F;
        bytes[2] = (STUFFING_PID & 0xFF) as u8;
        bytes[3] = 0;
        bytes[4] = 0;
        let crc = !crc32_update(!0, &bytes[1..5]);
        bytes[5..9].copy_from_slice(&crc.to_be_bytes());
        self.packets_emitted += 1;
        TsPacket { bytes }
    }

    /// Packetizes one unit onto `pid`, appending to `out`. The first
    /// packet has PUSI set and its payload begins with the 4-byte
    /// big-endian unit length.
    ///
    /// # Panics
    ///
    /// Panics if `pid` exceeds 13 bits, `pid` is the stuffing PID, or
    /// `unit` is empty.
    pub fn packetize_into(&mut self, pid: u16, unit: &[u8], out: &mut Vec<TsPacket>) {
        assert!(pid <= PID_MAX, "pid {pid:#x} exceeds 13 bits");
        assert!(pid != STUFFING_PID, "the stuffing pid carries no units");
        assert!(!unit.is_empty(), "cannot packetize an empty unit");
        let mut framed = Vec::with_capacity(4 + unit.len());
        framed.extend_from_slice(&(unit.len() as u32).to_be_bytes());
        framed.extend_from_slice(unit);
        let counter = self.counters.entry(pid).or_insert(0);
        let mut first = true;
        for chunk in framed.chunks(TS_PAYLOAD_MAX) {
            let mut bytes = [0xFFu8; TS_PACKET_LEN];
            bytes[0] = TS_SYNC;
            bytes[1] = (u8::from(first) << 7) | ((pid >> 8) as u8 & 0x1F);
            bytes[2] = (pid & 0xFF) as u8;
            bytes[3] = *counter << 4;
            bytes[4] = chunk.len() as u8;
            bytes[TS_HEADER_LEN..TS_HEADER_LEN + chunk.len()].copy_from_slice(chunk);
            let crc = !crc32_update(crc32_update(!0, &bytes[1..5]), chunk);
            bytes[5..9].copy_from_slice(&crc.to_be_bytes());
            out.push(TsPacket { bytes });
            *counter = (*counter + 1) & 0x0F;
            self.packets_emitted += 1;
            first = false;
        }
    }

    /// Convenience wrapper around [`TsMux::packetize_into`].
    #[must_use]
    pub fn packetize(&mut self, pid: u16, unit: &[u8]) -> Vec<TsPacket> {
        let mut out = Vec::with_capacity(unit.len() / TS_PAYLOAD_MAX + 1);
        self.packetize_into(pid, unit, &mut out);
        out
    }
}

/// Flattens packets to wire bytes.
#[must_use]
pub fn to_wire(packets: &[TsPacket]) -> Vec<u8> {
    let mut out = Vec::with_capacity(packets.len() * TS_PACKET_LEN);
    for p in packets {
        out.extend_from_slice(&p.bytes);
    }
    out
}

/// A unit being reassembled on one PID.
#[derive(Debug, Clone)]
struct Pending {
    need: usize,
    data: Vec<u8>,
}

/// Per-PID demux state.
#[derive(Debug, Clone, Default)]
struct PidState {
    expected_cc: Option<u8>,
    pending: Option<Pending>,
}

/// What the demux recovered and what it noticed going wrong.
#[derive(Debug, Clone, Default)]
pub struct DemuxReport {
    /// Completed units per PID, in arrival order.
    pub units: BTreeMap<u16, Vec<Vec<u8>>>,
    /// Packets examined (including bad ones).
    pub packets: u64,
    /// Packets rejected for CRC mismatch.
    pub crc_errors: u64,
    /// Packets rejected for bad sync/length framing.
    pub malformed: u64,
    /// Continuity-counter gaps observed (each counts once per gap, not
    /// per missing packet).
    pub continuity_gaps: u64,
    /// Units discarded because a gap, CRC failure, or truncation damaged
    /// them.
    pub damaged_units: u64,
    /// Continuation packets with no unit in progress (their PUSI packet
    /// was lost).
    pub stray_packets: u64,
    /// Null packets on [`STUFFING_PID`] (pure padding, skipped).
    pub stuffing_packets: u64,
}

impl DemuxReport {
    /// `true` when any form of loss or corruption was observed.
    #[must_use]
    pub fn loss_detected(&self) -> bool {
        self.crc_errors + self.malformed + self.continuity_gaps + self.damaged_units > 0
    }

    /// The units recovered on one PID.
    #[must_use]
    pub fn units_on(&self, pid: u16) -> &[Vec<u8>] {
        self.units.get(&pid).map_or(&[], Vec::as_slice)
    }
}

/// The depacketizer: verifies CRCs, tracks continuity per PID, and
/// reassembles units.
#[derive(Debug, Clone, Default)]
pub struct TsDemux {
    pids: BTreeMap<u16, PidState>,
    report: DemuxReport,
}

impl TsDemux {
    /// A fresh demux.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one wire packet.
    pub fn push(&mut self, wire: &[u8]) {
        self.report.packets += 1;
        if wire.len() != TS_PACKET_LEN || wire[0] != TS_SYNC {
            self.report.malformed += 1;
            return;
        }
        let pusi = wire[1] & 0x80 != 0;
        let pid = (u16::from(wire[1] & 0x1F) << 8) | u16::from(wire[2]);
        if pid == STUFFING_PID {
            // Pure padding: no payload, no continuity state. Counting it
            // as anything else would turn dropped or inserted stuffing
            // into false loss reports.
            self.report.stuffing_packets += 1;
            return;
        }
        let cc = wire[3] >> 4;
        let len = wire[4] as usize;
        if len == 0 || len > TS_PAYLOAD_MAX {
            self.report.malformed += 1;
            return;
        }
        let payload = &wire[TS_HEADER_LEN..TS_HEADER_LEN + len];
        let crc = u32::from_be_bytes([wire[5], wire[6], wire[7], wire[8]]);
        if !crc32_update(crc32_update(!0, &wire[1..5]), payload) != crc {
            // Corrupt packet: drop it. The continuity counter will flag
            // the hole on the next good packet of this PID.
            self.report.crc_errors += 1;
            return;
        }

        let state = self.pids.entry(pid).or_default();
        if let Some(expected) = state.expected_cc {
            if cc != expected {
                self.report.continuity_gaps += 1;
                if state.pending.take().is_some() {
                    self.report.damaged_units += 1;
                }
            }
        }
        state.expected_cc = Some((cc + 1) & 0x0F);

        if pusi {
            if state.pending.take().is_some() {
                // A new unit started before the previous completed: the
                // previous unit's tail was lost.
                self.report.damaged_units += 1;
            }
            if payload.len() < 4 {
                self.report.malformed += 1;
                return;
            }
            let need =
                u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
            state.pending = Some(Pending {
                need,
                data: Vec::with_capacity(need.min(1 << 20)),
            });
            Self::append(state, &payload[4..], &mut self.report, pid);
        } else if state.pending.is_some() {
            Self::append(state, payload, &mut self.report, pid);
        } else {
            self.report.stray_packets += 1;
        }
    }

    fn append(state: &mut PidState, bytes: &[u8], report: &mut DemuxReport, pid: u16) {
        let Some(p) = state.pending.as_mut() else {
            return;
        };
        p.data.extend_from_slice(bytes);
        if p.data.len() >= p.need {
            let pending = state.pending.take().expect("pending exists");
            let mut unit = pending.data;
            unit.truncate(pending.need);
            report.units.entry(pid).or_default().push(unit);
        }
    }

    /// Finishes the stream: any unit still in progress was truncated.
    #[must_use]
    pub fn finish(mut self) -> DemuxReport {
        for state in self.pids.values_mut() {
            if state.pending.take().is_some() {
                self.report.damaged_units += 1;
            }
        }
        self.report
    }
}

/// Demuxes a whole wire buffer (a multiple of 188 bytes; a trailing
/// partial packet counts as malformed).
#[must_use]
pub fn demux_wire(wire: &[u8]) -> DemuxReport {
    let mut d = TsDemux::new();
    let mut chunks = wire.chunks_exact(TS_PACKET_LEN);
    for packet in &mut chunks {
        d.push(packet);
    }
    let mut report = d.finish();
    if !chunks.remainder().is_empty() {
        report.malformed += 1;
        report.packets += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoroshiro128::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_unit_round_trips() {
        let unit = payload(1000, 1);
        let mut mux = TsMux::new();
        let packets = mux.packetize(VIDEO_PID, &unit);
        assert!(packets.iter().all(|p| p.bytes.len() == TS_PACKET_LEN));
        assert!(packets[0].pusi());
        assert!(packets[1..].iter().all(|p| !p.pusi()));
        assert!(packets.iter().all(|p| p.pid() == VIDEO_PID));
        let report = demux_wire(&to_wire(&packets));
        assert!(!report.loss_detected());
        assert_eq!(report.units_on(VIDEO_PID), &[unit]);
    }

    #[test]
    fn continuity_counters_increment_mod_16() {
        let mut mux = TsMux::new();
        let packets = mux.packetize(VIDEO_PID, &payload(5000, 2));
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.continuity(), (i % 16) as u8);
        }
    }

    #[test]
    fn multiple_units_and_pids_round_trip() {
        let mut mux = TsMux::new();
        let v0 = payload(700, 3);
        let v1 = payload(35, 4);
        let a0 = payload(250, 5);
        let mut packets = mux.packetize(VIDEO_PID, &v0);
        packets.extend(mux.packetize(AUDIO_PID, &a0));
        packets.extend(mux.packetize(VIDEO_PID, &v1));
        let report = demux_wire(&to_wire(&packets));
        assert!(!report.loss_detected());
        assert_eq!(report.units_on(VIDEO_PID), &[v0, v1]);
        assert_eq!(report.units_on(AUDIO_PID), &[a0]);
    }

    #[test]
    fn unit_smaller_than_one_packet() {
        let mut mux = TsMux::new();
        let unit = vec![0xABu8; 3];
        let packets = mux.packetize(META_PID, &unit);
        assert_eq!(packets.len(), 1);
        let report = demux_wire(&to_wire(&packets));
        assert_eq!(report.units_on(META_PID), &[unit]);
    }

    #[test]
    fn dropped_packet_is_detected_and_unit_discarded() {
        let mut mux = TsMux::new();
        let unit = payload(2000, 6);
        let mut packets = mux.packetize(VIDEO_PID, &unit);
        packets.remove(packets.len() / 2);
        let report = demux_wire(&to_wire(&packets));
        assert_eq!(report.continuity_gaps, 1);
        assert_eq!(report.damaged_units, 1);
        assert!(report.units_on(VIDEO_PID).is_empty());
        assert!(report.loss_detected());
    }

    #[test]
    fn dropped_final_packet_flags_truncated_unit() {
        let mut mux = TsMux::new();
        let mut packets = mux.packetize(VIDEO_PID, &payload(2000, 7));
        packets.pop();
        let report = demux_wire(&to_wire(&packets));
        // No later packet exists to expose the counter gap, but the
        // truncated unit is still flagged at end of stream.
        assert_eq!(report.damaged_units, 1);
        assert!(report.units_on(VIDEO_PID).is_empty());
    }

    #[test]
    fn dropped_pusi_leaves_stray_continuations() {
        let mut mux = TsMux::new();
        let mut packets = mux.packetize(VIDEO_PID, &payload(2000, 8));
        packets.remove(0);
        let report = demux_wire(&to_wire(&packets));
        assert!(report.stray_packets > 0);
        assert!(report.units_on(VIDEO_PID).is_empty());
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let mut mux = TsMux::new();
        let packets = mux.packetize(VIDEO_PID, &payload(500, 9));
        let mut wire = to_wire(&packets);
        wire[TS_HEADER_LEN + 4] ^= 0x01; // flip one payload bit
        let report = demux_wire(&wire);
        assert_eq!(report.crc_errors, 1);
        assert!(report.loss_detected());
    }

    #[test]
    fn loss_after_complete_unit_damages_nothing_already_delivered() {
        let mut mux = TsMux::new();
        let u0 = payload(300, 10);
        let u1 = payload(300, 11);
        let mut packets = mux.packetize(VIDEO_PID, &u0);
        let second = mux.packetize(VIDEO_PID, &u1);
        packets.extend_from_slice(&second[1..]); // drop u1's PUSI packet
        let report = demux_wire(&to_wire(&packets));
        assert_eq!(report.units_on(VIDEO_PID), &[u0]);
        assert!(report.loss_detected() || report.stray_packets > 0);
    }

    #[test]
    fn stuffing_is_invisible_to_gap_detection() {
        let mut mux = TsMux::new();
        let unit = payload(1500, 12);
        let data = mux.packetize(VIDEO_PID, &unit);
        // Interleave a null packet after every data packet.
        let mut packets = Vec::new();
        for p in &data {
            packets.push(*p);
            packets.push(mux.stuffing_packet());
        }
        let report = demux_wire(&to_wire(&packets));
        assert!(!report.loss_detected());
        assert_eq!(report.stuffing_packets, data.len() as u64);
        assert_eq!(report.units_on(VIDEO_PID), std::slice::from_ref(&unit));
        // Dropping every other stuffing packet is equally invisible.
        let thinned: Vec<TsPacket> = packets
            .iter()
            .enumerate()
            .filter(|(i, p)| p.pid() != STUFFING_PID || i % 4 == 1)
            .map(|(_, p)| *p)
            .collect();
        let report = demux_wire(&to_wire(&thinned));
        assert!(!report.loss_detected());
        assert_eq!(report.units_on(VIDEO_PID), &[unit]);
    }

    #[test]
    fn arbitrary_initial_continuity_is_not_a_gap() {
        for start in [1u8, 7, 15] {
            let mut mux = TsMux::new();
            mux.set_continuity(VIDEO_PID, start);
            let unit = payload(900, u64::from(start));
            let packets = mux.packetize(VIDEO_PID, &unit);
            assert_eq!(packets[0].continuity(), start);
            let report = demux_wire(&to_wire(&packets));
            assert!(
                !report.loss_detected(),
                "initial counter {start} must not look like a gap"
            );
            assert_eq!(report.units_on(VIDEO_PID), &[unit]);
        }
    }

    #[test]
    #[should_panic(expected = "carries no units")]
    fn stuffing_pid_rejected_for_units() {
        let _ = TsMux::new().packetize(STUFFING_PID, &[1]);
    }

    #[test]
    #[should_panic(expected = "empty unit")]
    fn empty_unit_rejected() {
        let _ = TsMux::new().packetize(VIDEO_PID, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds 13 bits")]
    fn oversized_pid_rejected() {
        let _ = TsMux::new().packetize(0x2000, &[1]);
    }
}
