//! Deterministic fault injection for the delivery stack.
//!
//! A [`FaultPlan`] is a seeded, timed schedule of injectable failures —
//! edge crashes (with cold or warm restarts), origin flap windows, and
//! link-degradation spans that scale capacity — that the cohort engine
//! replays off its own event calendar. Determinism is the whole point:
//! the same plan against the same load produces bit-identical reports,
//! so resilience regressions pin down exactly like perf regressions.
//! An *empty* plan is the degenerate case and costs nothing: the
//! simulator runs the exact plan-free code path (equality-pinned in the
//! property suite, same discipline as the zero-churn special case).
//!
//! Alongside the plan live the two knobs the rest of the stack uses to
//! *survive* those faults:
//!
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   seeded jitter and a give-up budget, generalising PR 5's
//!   `max_stale_refreshes`; used by session fetches, live manifest
//!   refreshes, and edge origin fills.
//! * [`ResilienceStats`] — what a faulted run cost: MTTR, sessions
//!   re-homed and impacted, fault-attributed rebuffer ticks, and the
//!   re-warm fills a cold restart triggers.

use signal::rng::splitmix64;

/// How a crashed edge comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// The replacement starts with an empty cache: every re-homed (or
    /// failed-back) request is a miss until the re-warm herd refills it.
    Cold,
    /// The edge returns with its cache intact (process restart, storage
    /// survived).
    Warm,
}

/// One injectable failure, on the simulator's tick timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Edge `edge` dies at `at`. With `restart: Some((tick, mode))` it
    /// returns at `tick`; with `None` it stays down forever.
    EdgeCrash {
        /// Which edge (tier index).
        edge: usize,
        /// Crash tick.
        at: u64,
        /// Restart tick and mode, or `None` for a permanent loss.
        restart: Option<(u64, RestartMode)>,
    },
    /// Shield `shield` (mid-tier cache) dies at `at`. Its child edges
    /// fail over to the surviving shields via the shield ring; `restart`
    /// works as for [`FaultEvent::EdgeCrash`]. Dropped when the tier
    /// runs no shields.
    ShieldCrash {
        /// Which shield (tier index).
        shield: usize,
        /// Crash tick.
        at: u64,
        /// Restart tick and mode, or `None` for a permanent loss.
        restart: Option<(u64, RestartMode)>,
    },
    /// The origin is unreachable for `[down_at, up_at)`: cache fills
    /// freeze mid-flight and resume on recovery.
    OriginFlap {
        /// Outage start.
        down_at: u64,
        /// Recovery tick (exclusive end of the outage).
        up_at: u64,
    },
    /// A link runs at `capacity_scale` of its provisioned rate for
    /// `[from, until)`. `edge: Some(i)` degrades edge `i`'s downlink,
    /// `None` degrades the shared origin uplink. Spans over the same
    /// link compose multiplicatively.
    LinkDegrade {
        /// Degraded edge, or `None` for the origin uplink.
        edge: Option<usize>,
        /// Span start.
        from: u64,
        /// Span end (exclusive).
        until: u64,
        /// Capacity multiplier in `(0, 1]` — e.g. `0.25` for a link
        /// running at a quarter rate.
        capacity_scale: f64,
    },
}

/// The primitive state transitions a [`FaultPlan`] resolves to, each
/// pinned to a tick. The calendar engine schedules these on its event
/// heap and applies them in order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultAction {
    /// Edge goes down.
    EdgeDown(usize),
    /// Edge comes back; `true` means cold (cache wiped).
    EdgeUp(usize, bool),
    /// Shield goes down.
    ShieldDown(usize),
    /// Shield comes back; `true` means cold (cache wiped).
    ShieldUp(usize, bool),
    /// Origin outage begins.
    OriginDown,
    /// Origin outage ends.
    OriginUp,
    /// Degradation span begins on `Some(edge)` or the origin (`None`).
    DegradeStart(Option<usize>, f64),
    /// Degradation span ends (same scale, so the product unwinds
    /// exactly).
    DegradeEnd(Option<usize>, f64),
}

/// What a [`FaultPlan`] resolves to for a concrete tier: the flattened
/// action timeline plus the plan seed (failover ring keys draw from it,
/// so the same traffic replays under different fault draws).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FaultSchedule {
    /// The plan's seed, carried through for fault-derived randomness.
    pub(crate) seed: u64,
    /// `(tick, action)` pairs, stably sorted by tick (see
    /// [`FaultPlan::resolve`]).
    pub(crate) actions: Vec<(u64, FaultAction)>,
}

/// A seeded, timed schedule of faults to inject into one simulated run.
///
/// The default plan is empty — and an empty plan is *guaranteed* to
/// leave the simulator on its plan-free code path, bit-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for fault-derived randomness (failover ring keys). Distinct
    /// from the load seed so the same traffic can replay under
    /// different fault draws.
    pub seed: u64,
    /// The schedule, in any order; resolution sorts it.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds an edge crash (restarting later when `restart` is set).
    #[must_use]
    pub fn crash_edge(mut self, edge: usize, at: u64, restart: Option<(u64, RestartMode)>) -> Self {
        self.events
            .push(FaultEvent::EdgeCrash { edge, at, restart });
        self
    }

    /// Adds a shield crash (restarting later when `restart` is set).
    #[must_use]
    pub fn crash_shield(
        mut self,
        shield: usize,
        at: u64,
        restart: Option<(u64, RestartMode)>,
    ) -> Self {
        self.events.push(FaultEvent::ShieldCrash {
            shield,
            at,
            restart,
        });
        self
    }

    /// Adds an origin outage over `[down_at, up_at)`.
    #[must_use]
    pub fn flap_origin(mut self, down_at: u64, up_at: u64) -> Self {
        self.events.push(FaultEvent::OriginFlap { down_at, up_at });
        self
    }

    /// Adds a link-degradation span over `[from, until)`.
    #[must_use]
    pub fn degrade_link(
        mut self,
        edge: Option<usize>,
        from: u64,
        until: u64,
        capacity_scale: f64,
    ) -> Self {
        self.events.push(FaultEvent::LinkDegrade {
            edge,
            from,
            until,
            capacity_scale,
        });
        self
    }

    /// Compiles a [`netstack::link::LinkTrace`] into link-degradation
    /// spans against `edge` (or the origin uplink with `None`),
    /// threading the same per-session bandwidth schedules the transport
    /// runs on into the fluid engine's per-link parameters. Each trace
    /// phase whose `ticks_per_byte` differs from `base_ticks_per_byte`
    /// becomes one span scaled by `base / phase` (a phase twice as slow
    /// is a 0.5-capacity span); phases at the base rate and zero-length
    /// phases emit nothing. The schedule is walked (repeating when the
    /// trace repeats) until `horizon_ticks`.
    #[must_use]
    pub fn degrade_from_trace(
        mut self,
        edge: Option<usize>,
        trace: &netstack::link::LinkTrace,
        base_ticks_per_byte: f64,
        horizon_ticks: u64,
    ) -> Self {
        if trace.phases.is_empty() || trace.total_ticks() == 0 || base_ticks_per_byte <= 0.0 {
            return self;
        }
        let mut at = 0u64;
        'walk: loop {
            for phase in &trace.phases {
                if at >= horizon_ticks {
                    break 'walk;
                }
                let until = at.saturating_add(phase.ticks).min(horizon_ticks);
                if phase.ticks > 0 && phase.ticks_per_byte > 0.0 {
                    let scale = base_ticks_per_byte / phase.ticks_per_byte;
                    if (scale - 1.0).abs() > f64::EPSILON {
                        self = self.degrade_link(edge, at, until, scale);
                    }
                }
                at = at.saturating_add(phase.ticks);
            }
            if !trace.repeat {
                break;
            }
        }
        // A non-repeating trace settles into its final phase (matching
        // `Link`'s persist-last semantics): extend that scale to the
        // horizon.
        if !trace.repeat && at < horizon_ticks {
            if let Some(last) = trace.phases.last() {
                if last.ticks_per_byte > 0.0 {
                    let scale = base_ticks_per_byte / last.ticks_per_byte;
                    if (scale - 1.0).abs() > f64::EPSILON {
                        self = self.degrade_link(edge, at, horizon_ticks, scale);
                    }
                }
            }
        }
        self
    }

    /// `true` when the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Flattens the plan into `(tick, action)` pairs, stably sorted by
    /// tick. Per event the *down* transition is emitted before the *up*
    /// one, so a same-tick crash-and-restart applies as crash, then
    /// restart. Events naming an edge outside `0..n_edges` (or a shield
    /// outside `0..n_shields`) are dropped (a plan written for an
    /// 8-edge tier degrades gracefully on a smaller one, and shield
    /// crashes are no-ops on a flat topology); empty or zero-length
    /// spans resolve to nothing.
    pub(crate) fn resolve(&self, n_edges: usize, n_shields: usize) -> Vec<(u64, FaultAction)> {
        let mut out: Vec<(u64, FaultAction)> = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::EdgeCrash { edge, at, restart } => {
                    if edge >= n_edges {
                        continue;
                    }
                    out.push((at, FaultAction::EdgeDown(edge)));
                    if let Some((up_at, mode)) = restart {
                        if up_at >= at {
                            out.push((up_at, FaultAction::EdgeUp(edge, mode == RestartMode::Cold)));
                        }
                    }
                }
                FaultEvent::ShieldCrash {
                    shield,
                    at,
                    restart,
                } => {
                    if shield >= n_shields {
                        continue;
                    }
                    out.push((at, FaultAction::ShieldDown(shield)));
                    if let Some((up_at, mode)) = restart {
                        if up_at >= at {
                            out.push((
                                up_at,
                                FaultAction::ShieldUp(shield, mode == RestartMode::Cold),
                            ));
                        }
                    }
                }
                FaultEvent::OriginFlap { down_at, up_at } => {
                    if up_at <= down_at {
                        continue;
                    }
                    out.push((down_at, FaultAction::OriginDown));
                    out.push((up_at, FaultAction::OriginUp));
                }
                FaultEvent::LinkDegrade {
                    edge,
                    from,
                    until,
                    capacity_scale,
                } => {
                    if until <= from
                        || capacity_scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
                    {
                        continue;
                    }
                    if let Some(e) = edge {
                        if e >= n_edges {
                            continue;
                        }
                    }
                    out.push((from, FaultAction::DegradeStart(edge, capacity_scale)));
                    out.push((until, FaultAction::DegradeEnd(edge, capacity_scale)));
                }
            }
        }
        // Stable by tick: same-tick actions keep schedule order, with
        // each event's own down-before-up already encoded above.
        out.sort_by_key(|&(t, _)| t);
        out
    }
}

/// Capped exponential backoff with deterministic seeded jitter and a
/// give-up budget — the one retry discipline shared by session segment
/// fetches, live manifest refreshes, and edge origin fills.
///
/// The default policy makes **no retries** (`max_attempts: 1`): every
/// legacy call site keeps its exact prior behavior until a caller opts
/// in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included). `1` disables
    /// retries; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Backoff before the first retry, in ticks; doubles per retry.
    pub base_backoff_ticks: u64,
    /// Ceiling on the exponential backoff, in ticks.
    pub max_backoff_ticks: u64,
    /// Uniform jitter in `0..=jitter_ticks` added to every backoff,
    /// drawn deterministically from `seed` and the attempt number.
    pub jitter_ticks: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// No retries: one attempt, fail fast — legacy behavior.
    fn default() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_ticks: 0,
            max_backoff_ticks: 0,
            jitter_ticks: 0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A sensible starting point for fault-tolerant callers: 4 total
    /// attempts, 50-tick base backoff doubling to a 400-tick cap, up to
    /// 16 ticks of seeded jitter.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ticks: 50,
            max_backoff_ticks: 400,
            jitter_ticks: 16,
            seed,
        }
    }

    /// The wait before the next attempt, given `failures` failures so
    /// far (so `failures >= 1`). `None` means the budget is spent:
    /// give up and surface the error. Deterministic in `(self, failures)`.
    #[must_use]
    pub fn backoff_before(&self, failures: u32) -> Option<u64> {
        if failures >= self.max_attempts.max(1) {
            return None;
        }
        let exp = self
            .base_backoff_ticks
            .saturating_mul(1u64.checked_shl(failures - 1).unwrap_or(u64::MAX))
            .min(self.max_backoff_ticks);
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(failures)) % (self.jitter_ticks + 1)
        };
        Some(exp + jitter)
    }
}

/// What a faulted run cost, beyond the ordinary load report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceStats {
    /// Edge crashes applied.
    pub edge_crashes: u64,
    /// Edge restarts applied.
    pub edge_restarts: u64,
    /// Shield crashes applied.
    pub shield_crashes: u64,
    /// Shield restarts applied.
    pub shield_restarts: u64,
    /// Mean ticks from crash to restart across restarted caches (MTTR,
    /// edges and shields pooled); `0.0` when nothing restarted.
    pub mean_restore_ticks: f64,
    /// Sessions moved off their home edge by failover (each move of a
    /// counted cohort counts every member).
    pub sessions_rehomed: u64,
    /// Sessions that began at least one rebuffer event while fault
    /// pressure was active — the survival-bar numerator.
    pub sessions_fault_rebuffered: u64,
    /// Stalled session-ticks attributable to active faults.
    pub fault_rebuffer_ticks: u64,
    /// Cache fills started while fault pressure was active — the
    /// re-warm herd a cold restart (or failover onto a cold survivor)
    /// triggers, after [`crate::edge::FillTable`] coalescing.
    pub rewarm_fills: u64,
    /// In-flight fills killed by an edge crash.
    pub fills_lost: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_resolves_to_nothing() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::default().resolve(4, 0).is_empty());
        assert!(FaultPlan::new(9).resolve(4, 2).is_empty());
    }

    #[test]
    fn resolve_orders_by_tick_with_down_before_up() {
        let plan = FaultPlan::new(1)
            .flap_origin(500, 900)
            .crash_edge(2, 300, Some((700, RestartMode::Cold)))
            .crash_edge(0, 300, None);
        let acts = plan.resolve(4, 0);
        assert_eq!(
            acts,
            vec![
                (300, FaultAction::EdgeDown(2)),
                (300, FaultAction::EdgeDown(0)),
                (500, FaultAction::OriginDown),
                (700, FaultAction::EdgeUp(2, true)),
                (900, FaultAction::OriginUp),
            ]
        );
    }

    #[test]
    fn same_tick_crash_and_restart_applies_down_first() {
        let acts = FaultPlan::new(0)
            .crash_edge(1, 100, Some((100, RestartMode::Warm)))
            .resolve(2, 0);
        assert_eq!(
            acts,
            vec![
                (100, FaultAction::EdgeDown(1)),
                (100, FaultAction::EdgeUp(1, false)),
            ]
        );
    }

    #[test]
    fn trace_compiles_to_degrade_spans() {
        use netstack::link::{LinkTrace, TracePhase};
        // Base 1.0 ticks/byte; phase 1 is 4x slower (scale 0.25), the
        // others run at the base rate and emit nothing. Non-repeating:
        // the last phase persists, and at the base rate it also emits
        // nothing past the end.
        let trace = LinkTrace {
            phases: vec![
                TracePhase {
                    ticks: 100,
                    ticks_per_byte: 1.0,
                    loss: 0.0,
                },
                TracePhase {
                    ticks: 50,
                    ticks_per_byte: 4.0,
                    loss: 0.0,
                },
                TracePhase {
                    ticks: 100,
                    ticks_per_byte: 1.0,
                    loss: 0.0,
                },
            ],
            repeat: false,
        };
        let acts = FaultPlan::new(0)
            .degrade_from_trace(Some(0), &trace, 1.0, 1_000)
            .resolve(2, 0);
        assert_eq!(
            acts,
            vec![
                (100, FaultAction::DegradeStart(Some(0), 0.25)),
                (150, FaultAction::DegradeEnd(Some(0), 0.25)),
            ]
        );
        // Repeating: the slow phase recurs every period up to the
        // horizon.
        let wrapped = LinkTrace {
            repeat: true,
            ..trace
        };
        let acts = FaultPlan::new(0)
            .degrade_from_trace(None, &wrapped, 1.0, 500)
            .resolve(2, 0);
        assert_eq!(
            acts,
            vec![
                (100, FaultAction::DegradeStart(None, 0.25)),
                (150, FaultAction::DegradeEnd(None, 0.25)),
                (350, FaultAction::DegradeStart(None, 0.25)),
                (400, FaultAction::DegradeEnd(None, 0.25)),
            ]
        );
    }

    #[test]
    fn resolve_drops_out_of_range_and_degenerate_events() {
        let plan = FaultPlan::new(0)
            .crash_edge(7, 10, Some((20, RestartMode::Warm))) // edge out of range
            .flap_origin(50, 50) // zero-length
            .degrade_link(Some(9), 0, 100, 0.5) // edge out of range
            .degrade_link(None, 30, 30, 0.5) // zero-length
            .degrade_link(None, 40, 60, 0.0) // zero scale
            .crash_shield(2, 10, Some((20, RestartMode::Cold))); // shield out of range
        assert!(plan.resolve(4, 2).is_empty());
    }

    #[test]
    fn shield_crash_resolves_like_an_edge_crash() {
        let acts = FaultPlan::new(0)
            .crash_shield(1, 100, Some((300, RestartMode::Cold)))
            .resolve(8, 2);
        assert_eq!(
            acts,
            vec![
                (100, FaultAction::ShieldDown(1)),
                (300, FaultAction::ShieldUp(1, true)),
            ]
        );
        // The same plan on a flat (shield-less) tier is a no-op.
        assert!(FaultPlan::new(0)
            .crash_shield(1, 100, Some((300, RestartMode::Cold)))
            .resolve(8, 0)
            .is_empty());
    }

    #[test]
    fn degrade_span_emits_matched_start_and_end() {
        let acts = FaultPlan::new(0)
            .degrade_link(Some(1), 10, 90, 0.25)
            .resolve(2, 0);
        assert_eq!(
            acts,
            vec![
                (10, FaultAction::DegradeStart(Some(1), 0.25)),
                (90, FaultAction::DegradeEnd(Some(1), 0.25)),
            ]
        );
    }

    #[test]
    fn default_retry_policy_never_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(1), None);
        assert_eq!(p.backoff_before(7), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_ticks: 100,
            max_backoff_ticks: 450,
            jitter_ticks: 0,
            seed: 0,
        };
        assert_eq!(p.backoff_before(1), Some(100));
        assert_eq!(p.backoff_before(2), Some(200));
        assert_eq!(p.backoff_before(3), Some(400));
        assert_eq!(p.backoff_before(4), Some(450), "capped");
        assert_eq!(p.backoff_before(5), Some(450));
        assert_eq!(p.backoff_before(6), None, "budget spent");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_ticks: 100,
            max_backoff_ticks: 100,
            jitter_ticks: 16,
            seed: 0xFEED,
        };
        for failures in 1..10 {
            let a = p.backoff_before(failures).unwrap();
            let b = p.backoff_before(failures).unwrap();
            assert_eq!(a, b, "same inputs, same backoff");
            assert!((100..=116).contains(&a), "jitter within bounds: {a}");
        }
        // A different seed draws different jitter somewhere in the run.
        let q = RetryPolicy { seed: 0xBEEF, ..p };
        assert!(
            (1..10).any(|f| p.backoff_before(f) != q.backoff_before(f)),
            "seed must matter"
        );
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_ticks: u64::MAX / 2,
            max_backoff_ticks: u64::MAX,
            jitter_ticks: 0,
            seed: 0,
        };
        assert_eq!(p.backoff_before(200), Some(u64::MAX));
    }

    #[test]
    fn zero_max_attempts_is_treated_as_one() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::standard(1)
        };
        assert_eq!(p.backoff_before(1), None);
    }

    #[test]
    fn resilience_stats_default_is_all_zero() {
        let s = ResilienceStats::default();
        assert_eq!(
            s,
            ResilienceStats {
                edge_crashes: 0,
                edge_restarts: 0,
                shield_crashes: 0,
                shield_restarts: 0,
                mean_restore_ticks: 0.0,
                sessions_rehomed: 0,
                sessions_fault_rebuffered: 0,
                fault_rebuffer_ticks: 0,
                rewarm_fills: 0,
                fills_lost: 0,
            }
        );
    }
}
