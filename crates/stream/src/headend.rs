//! Bridge from the real head-end to the MPSoC model.
//!
//! The ladder encoder measures what each rung actually cost
//! ([`crate::ladder::RungCost`]: encoder stage tallies + elementary
//! stream bytes) and what each segment actually weighs (the manifest's
//! wire byte counts). This module folds those measurements into the
//! *single* staged head-end definition — an
//! [`mpsoc::headend::HeadendSpec`] — that is consumed two ways:
//!
//! * **Modeled**: `spec.task_graph()` maps the capture → per-rung
//!   encode → mux → seal → publish pipeline across MPSoC platform
//!   configurations, yielding latency/energy per PE count.
//! * **Executed**: the same per-rung stages run as
//!   [`crate::ladder::encode_rung`] work units on an `mmpool`
//!   worker pool ([`crate::ladder::encode_ladder_on`]), yielding
//!   measured core-count scaling on the host.
//!
//! Because the spec is derived from a really-encoded ladder, the graph
//! the simulator schedules carries *measured* op counts and byte
//! volumes, not guesses — closing ROADMAP item 2's loop between the
//! paper's platform model and the streaming stack built around it.

use mpsoc::headend::{EncodeTally, HeadendSpec};
use video::Frame;

use crate::ladder::Ladder;

/// Derives the staged head-end spec from a measured ladder and the raw
/// source it was encoded from.
///
/// Per rung: the encoder's measured [`StageTally`] becomes the encode
/// task's [`EncodeTally`] (SAD pixel ops, transform MACs, quantized
/// coefficients, VLC symbols, MC pixels), the summed elementary-stream
/// bytes weight the encode→mux edge, and the manifest's summed segment
/// sizes weight the rung's share of the mux→seal→publish chain. The
/// capture fan-out carries the raw 4:2:0 source volume.
///
/// [`StageTally`]: video::encoder::StageTally
///
/// # Panics
///
/// Panics if `ladder.rung_costs` is not parallel to `manifest.rungs` —
/// only possible for a hand-assembled ladder.
#[must_use]
pub fn headend_spec(ladder: &Ladder, source: &[Frame]) -> HeadendSpec {
    assert_eq!(
        ladder.rung_costs.len(),
        ladder.manifest.rungs.len(),
        "rung costs must be parallel to manifest rungs"
    );
    let source_bytes: u64 = source
        .iter()
        .map(|f| (f.luma().len() + f.cb().len() + f.cr().len()) as u64)
        .sum();
    let mut spec = HeadendSpec::new(ladder.manifest.title.clone(), source_bytes);
    for (rung, cost) in ladder.manifest.rungs.iter().zip(&ladder.rung_costs) {
        let wire_bytes: u64 = rung.segments.iter().map(|s| s.bytes as u64).sum();
        let tally = EncodeTally {
            sad_evaluations: cost.tally.me_sad_evaluations,
            sad_pixel_ops: cost.tally.me_pixel_ops,
            transform_macs: cost.tally.dct_macs(),
            quant_coeffs: cost.tally.quant_coeffs,
            vlc_symbols: cost.tally.vlc_symbols,
            mc_pixels: cost.tally.mc_pixels,
        };
        spec.push_rung(tally, cost.es_bytes, wire_bytes);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{encode_ladder, LadderConfig};
    use video::synth::SequenceGen;

    fn ladder_and_source() -> (Ladder, Vec<Frame>) {
        let frames = SequenceGen::new(7).panning_sequence(64, 48, 8, 1, 1);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        let ladder = encode_ladder("spec", &frames, &cfg).expect("ladder encodes");
        (ladder, frames)
    }

    #[test]
    fn spec_mirrors_the_measured_ladder() {
        let (ladder, frames) = ladder_and_source();
        let spec = headend_spec(&ladder, &frames);
        assert_eq!(spec.rung_count(), 3);
        // Source volume: 4:2:0 planes over all frames.
        assert_eq!(spec.source_bytes, (64 * 48 * 3 / 2) * 8);
        // Wire bytes match the manifest exactly.
        let manifest_wire: u64 = ladder
            .manifest
            .rungs
            .iter()
            .flat_map(|r| r.segments.iter())
            .map(|s| s.bytes as u64)
            .sum();
        assert_eq!(spec.wire_bytes(), manifest_wire);
        // Measured tallies survive the translation.
        for (stage, cost) in spec.rungs.iter().zip(&ladder.rung_costs) {
            assert_eq!(stage.tally.sad_evaluations, cost.tally.me_sad_evaluations);
            assert_eq!(stage.tally.transform_macs, cost.tally.dct_macs());
            assert_eq!(stage.es_bytes, cost.es_bytes);
            assert!(stage.tally.vlc_symbols > 0, "rung emitted symbols");
        }
        // Higher rungs spend more bits, so their wire share ascends.
        assert!(spec
            .rungs
            .windows(2)
            .all(|w| w[0].wire_bytes < w[1].wire_bytes));
    }

    #[test]
    fn spec_builds_the_pipeline_graph() {
        let (ladder, frames) = ladder_and_source();
        let g = headend_spec(&ladder, &frames).task_graph();
        assert_eq!(g.task_count(), 3 + 4);
        assert_eq!(g.edge_count(), 2 * 3 + 2);
        assert!(g.topological_order().is_ok());
        // The encode stages dominate the op budget (real encoders do).
        let total = g.total_ops().total();
        let encode: u64 = g
            .tasks()
            .iter()
            .filter(|t| t.name.starts_with("encode_r"))
            .map(|t| t.ops.total())
            .sum();
        assert!(encode * 2 > total, "encode {encode} of {total}");
    }
}
