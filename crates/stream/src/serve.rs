//! A deterministic many-session load simulator for one segment server.
//!
//! The ROADMAP's north star is per-server scale: how many concurrent
//! viewers can one uplink feed before quality collapses? Echoing the
//! group-size-threshold result in *Group Size Effect on the Success of
//! Wolves Hunting* (PAPERS.md), per-session returns are flat up to a
//! capacity knee and fall off beyond it — this module measures that
//! knee. Thousands of sessions are interleaved in a single-threaded
//! fluid event loop (no OS threads, no wall clock, every number derived
//! from seeds), sharing the server uplink max-min-equally while each
//! session runs the same [`AbrController`] and playout-buffer model as
//! the transport-level single session.

use signal::rng::Xoroshiro128;

use crate::ladder::Manifest;
use crate::session::AbrController;

/// Segment-server capacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Shared uplink, bytes per tick.
    pub capacity_bytes_per_tick: f64,
    /// Each viewer's access-link ceiling, bytes per tick (matches the
    /// default `LinkConfig` serialization rate of 100 bytes/tick).
    pub per_session_bytes_per_tick: f64,
}

impl Default for ServerConfig {
    /// A 4,000 byte/tick uplink feeding 100 byte/tick access links.
    fn default() -> Self {
        Self {
            capacity_bytes_per_tick: 4_000.0,
            per_session_bytes_per_tick: 100.0,
        }
    }
}

/// Load-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Concurrent viewer sessions.
    pub sessions: usize,
    /// Session arrivals are spread uniformly over this many ticks.
    pub stagger_ticks: u64,
    /// Seed for arrival times.
    pub seed: u64,
    /// Segments buffered before playback starts.
    pub startup_segments: usize,
    /// ABR headroom.
    pub safety: f64,
    /// ABR throughput smoothing.
    pub ewma_alpha: f64,
    /// Simulation step, ticks (larger = faster, coarser).
    pub tick_quantum: u64,
    /// Hard stop.
    pub max_ticks: u64,
}

impl Default for LoadConfig {
    /// 100 sessions arriving over 1,000 ticks, 2-segment startup buffer,
    /// quantum 4, 10M-tick ceiling.
    fn default() -> Self {
        Self {
            sessions: 100,
            stagger_ticks: 1_000,
            seed: 7,
            startup_segments: 2,
            safety: 0.7,
            ewma_alpha: 0.4,
            tick_quantum: 4,
            max_ticks: 10_000_000,
        }
    }
}

/// One simulated viewer.
#[derive(Debug, Clone)]
struct SimSession {
    start_tick: u64,
    abr: AbrController,
    seg: usize,
    rung: usize,
    remaining_bytes: f64,
    fetch_start: u64,
    buffer_ticks: f64,
    fetched: usize,
    playing: bool,
    in_rebuffer: bool,
    startup_ticks: u64,
    rebuffer_events: u32,
    rung_switches: u32,
    rung_sum: u64,
    delivered_bits: u64,
    done_at: Option<u64>,
}

/// Aggregate result of one load level.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Sessions simulated.
    pub sessions: usize,
    /// Sessions that fetched every segment before `max_ticks`.
    pub completed: usize,
    /// Ticks until the last session finished (or the ceiling).
    pub ticks: u64,
    /// Server-side goodput, bits per tick, over the busy period.
    pub total_goodput_bits_per_tick: f64,
    /// Mean per-session delivered bits per tick of session lifetime.
    pub mean_session_bits_per_tick: f64,
    /// Mean startup delay across sessions that started playing.
    pub mean_startup_ticks: f64,
    /// Sessions that stalled at least once after startup.
    pub rebuffer_sessions: usize,
    /// `rebuffer_sessions / sessions`.
    pub rebuffer_fraction: f64,
    /// Mean rung index across every fetched segment.
    pub mean_rung: f64,
    /// Total rung switches across sessions.
    pub rung_switches: u64,
}

/// Runs `load.sessions` concurrent viewers against one server.
///
/// Entirely deterministic: identical inputs give an identical report.
///
/// # Panics
///
/// Panics on a zero-session or zero-quantum load, or an empty manifest.
#[must_use]
pub fn simulate_load(manifest: &Manifest, server: &ServerConfig, load: &LoadConfig) -> LoadReport {
    assert!(load.sessions > 0, "need at least one session");
    assert!(load.tick_quantum > 0, "quantum must be positive");
    let n_segments = manifest.segment_count();
    assert!(n_segments > 0, "manifest has no segments");

    let mut rng = Xoroshiro128::new(load.seed);
    let mut sessions: Vec<SimSession> = (0..load.sessions)
        .map(|_| SimSession {
            start_tick: rng.below(load.stagger_ticks + 1),
            abr: AbrController::new(load.ewma_alpha, load.safety),
            seg: 0,
            rung: 0,
            remaining_bytes: manifest.rungs[0].segments[0].bytes as f64,
            fetch_start: 0,
            buffer_ticks: 0.0,
            fetched: 0,
            playing: false,
            in_rebuffer: false,
            startup_ticks: 0,
            rebuffer_events: 0,
            rung_switches: 0,
            rung_sum: 0,
            delivered_bits: 0,
            done_at: None,
        })
        .collect();
    for s in &mut sessions {
        s.fetch_start = s.start_tick;
    }
    let startup_after = load.startup_segments.clamp(1, n_segments);

    let q = load.tick_quantum;
    let mut now = 0u64;
    let mut live = load.sessions;
    while live > 0 && now < load.max_ticks {
        let active = sessions
            .iter()
            .filter(|s| s.done_at.is_none() && s.start_tick <= now)
            .count();
        if active == 0 {
            now += q;
            continue;
        }
        // Max-min fair share of the uplink, capped by the access link.
        let rate =
            (server.capacity_bytes_per_tick / active as f64).min(server.per_session_bytes_per_tick);
        let step = q as f64;
        for s in sessions.iter_mut() {
            if s.done_at.is_some() || s.start_tick > now {
                continue;
            }
            // Playout drains while the next segment downloads.
            if s.playing {
                s.buffer_ticks -= step;
                if s.buffer_ticks < 0.0 {
                    if !s.in_rebuffer {
                        s.in_rebuffer = true;
                        s.rebuffer_events += 1;
                    }
                    s.buffer_ticks = 0.0;
                }
            }
            s.remaining_bytes -= rate * step;
            if s.remaining_bytes > 0.0 {
                continue;
            }
            // Segment complete at the end of this quantum.
            let end = now + q;
            let entry = &manifest.rungs[s.rung].segments[s.seg];
            let elapsed = end.saturating_sub(s.fetch_start).max(1);
            s.abr.observe((entry.bytes * 8) as f64, elapsed as f64);
            s.delivered_bits += (entry.bytes * 8) as u64;
            s.rung_sum += s.rung as u64;
            s.buffer_ticks += (entry.frames as u64 * manifest.ticks_per_frame) as f64;
            s.in_rebuffer = false;
            s.fetched += 1;
            if !s.playing && s.fetched >= startup_after {
                s.playing = true;
                s.startup_ticks = end - s.start_tick;
            }
            s.seg += 1;
            if s.seg == n_segments {
                s.done_at = Some(end);
                live -= 1;
                continue;
            }
            let next_rung = s.abr.pick(manifest, s.seg, None);
            if next_rung != s.rung {
                s.rung_switches += 1;
            }
            s.rung = next_rung;
            s.remaining_bytes += manifest.rungs[s.rung].segments[s.seg].bytes as f64;
            s.fetch_start = end;
        }
        now += q;
    }

    let end_tick = sessions
        .iter()
        .filter_map(|s| s.done_at)
        .max()
        .unwrap_or(now)
        .max(1);
    let completed = sessions.iter().filter(|s| s.done_at.is_some()).count();
    let total_bits: u64 = sessions.iter().map(|s| s.delivered_bits).sum();
    let mean_session_rate = sessions
        .iter()
        .map(|s| {
            let end = s.done_at.unwrap_or(now).max(s.start_tick + 1);
            s.delivered_bits as f64 / (end - s.start_tick) as f64
        })
        .sum::<f64>()
        / load.sessions as f64;
    let started: Vec<&SimSession> = sessions.iter().filter(|s| s.playing).collect();
    let mean_startup = if started.is_empty() {
        0.0
    } else {
        started.iter().map(|s| s.startup_ticks as f64).sum::<f64>() / started.len() as f64
    };
    let rebuffer_sessions = sessions.iter().filter(|s| s.rebuffer_events > 0).count();
    let fetched_total: u64 = sessions.iter().map(|s| s.fetched as u64).sum();
    let rung_sum: u64 = sessions.iter().map(|s| s.rung_sum).sum();
    LoadReport {
        sessions: load.sessions,
        completed,
        ticks: end_tick,
        total_goodput_bits_per_tick: total_bits as f64 / end_tick as f64,
        mean_session_bits_per_tick: mean_session_rate,
        mean_startup_ticks: mean_startup,
        rebuffer_sessions,
        rebuffer_fraction: rebuffer_sessions as f64 / load.sessions as f64,
        mean_rung: rung_sum as f64 / fetched_total.max(1) as f64,
        rung_switches: sessions.iter().map(|s| u64::from(s.rung_switches)).sum(),
    }
}

/// Sweeps session counts and reports one [`LoadReport`] per level.
#[must_use]
pub fn capacity_curve(
    manifest: &Manifest,
    server: &ServerConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<LoadReport> {
    counts
        .iter()
        .map(|&sessions| simulate_load(manifest, server, &LoadConfig { sessions, ..*base }))
        .collect()
}

/// The capacity knee: the largest swept session count at which at most
/// `stall_tolerance` of sessions rebuffered. `None` when even the
/// smallest level stalls more than that.
#[must_use]
pub fn capacity_knee(curve: &[LoadReport], stall_tolerance: f64) -> Option<usize> {
    curve
        .iter()
        .filter(|r| r.rebuffer_fraction <= stall_tolerance)
        .map(|r| r.sessions)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{encode_ladder, LadderConfig};
    use video::synth::SequenceGen;

    fn manifest() -> Manifest {
        let frames = SequenceGen::new(44).panning_sequence(48, 32, 16, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        encode_ladder("movie", &frames, &cfg).unwrap().manifest
    }

    #[test]
    fn a_lone_session_reaches_the_top_rung() {
        let m = manifest();
        let r = simulate_load(
            &m,
            &ServerConfig::default(),
            &LoadConfig {
                sessions: 1,
                stagger_ticks: 0,
                ..Default::default()
            },
        );
        assert_eq!(r.completed, 1);
        assert_eq!(r.rebuffer_sessions, 0);
        assert!(r.mean_rung > 0.5, "mean rung {}", r.mean_rung);
    }

    #[test]
    fn oversubscription_degrades_quality_then_stability() {
        let m = manifest();
        let server = ServerConfig::default();
        let base = LoadConfig::default();
        let light = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 8,
                ..base
            },
        );
        let heavy = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 2_000,
                ..base
            },
        );
        assert_eq!(light.completed, 8);
        assert!(light.rebuffer_fraction <= 0.05);
        assert!(
            heavy.mean_rung < light.mean_rung,
            "overload must push sessions down the ladder: {} vs {}",
            heavy.mean_rung,
            light.mean_rung
        );
        assert!(
            heavy.mean_session_bits_per_tick < light.mean_session_bits_per_tick,
            "per-session delivered rate must fall past the knee"
        );
        assert!(heavy.rebuffer_fraction > light.rebuffer_fraction);
    }

    #[test]
    fn thousands_of_sessions_complete_and_knee_is_found() {
        let m = manifest();
        let server = ServerConfig::default();
        let base = LoadConfig::default();
        let counts = [50, 200, 1_000, 3_000];
        let curve = capacity_curve(&m, &server, &counts, &base);
        assert_eq!(curve.len(), 4);
        assert!(curve.iter().all(|r| r.completed == r.sessions));
        let knee = capacity_knee(&curve, 0.05);
        assert!(knee.is_some(), "some level must be sustainable");
        assert!(knee.unwrap() >= 50);
        // Server goodput saturates: the biggest level cannot beat the
        // uplink.
        let cap_bits = server.capacity_bytes_per_tick * 8.0;
        assert!(curve
            .iter()
            .all(|r| r.total_goodput_bits_per_tick <= cap_bits * 1.01));
    }

    #[test]
    fn simulation_is_deterministic() {
        let m = manifest();
        let server = ServerConfig::default();
        let load = LoadConfig {
            sessions: 500,
            ..Default::default()
        };
        let a = simulate_load(&m, &server, &load);
        let b = simulate_load(&m, &server, &load);
        assert_eq!(a, b);
    }

    #[test]
    fn stagger_spreads_startup_contention() {
        let m = manifest();
        let server = ServerConfig::default();
        let burst = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 400,
                stagger_ticks: 0,
                ..Default::default()
            },
        );
        let spread = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 400,
                stagger_ticks: 200_000,
                ..Default::default()
            },
        );
        assert!(
            spread.mean_startup_ticks <= burst.mean_startup_ticks,
            "arrival spreading should not worsen startup: {} vs {}",
            spread.mean_startup_ticks,
            burst.mean_startup_ticks
        );
    }
}
