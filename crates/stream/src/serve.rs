//! Deterministic many-session load simulators: one origin uplink, or an
//! edge-cache tier in front of it.
//!
//! The ROADMAP's north star is per-server scale: how many concurrent
//! viewers can the delivery tier feed before quality collapses? Echoing
//! the group-size-threshold result in *Group Size Effect on the Success
//! of Wolves Hunting* (PAPERS.md), per-session returns are flat up to a
//! capacity knee and fall off beyond it — this module measures that
//! knee. Thousands of sessions are interleaved in a single-threaded
//! fluid event loop (no OS threads, no wall clock, every number derived
//! from seeds), each running the same [`AbrController`] and
//! playout-buffer model as the transport-level single session.
//!
//! [`simulate_load`] is PR 3's single-origin model: every session shares
//! one uplink max-min-equally. [`simulate_edge_load`] routes the same
//! sessions through an [`EdgeTierConfig`] instead — N edge caches, each
//! with a bounded LRU and its own downlink, misses coalesced into
//! shared-origin fills — which is how the knee moves past the
//! single-uplink ceiling. Both are the same engine; the single origin is
//! literally the one-edge, everything-cached special case.

use mmpool::WorkerPool;
use signal::rng::Xoroshiro128;

use crate::catalog::{Catalog, ZipfSampler};
use crate::edge::{splitmix64, EdgeStats, EdgeTierConfig, FillTable, HashRing, Lru, Sharding};
use crate::fault::{FaultPlan, FaultSchedule, ResilienceStats};
use crate::ladder::Manifest;
#[cfg(test)]
use crate::session::AbrController;
use crate::session::JoinMode;
use crate::shield::{AdmissionPolicy, ObjKey, TierStats};

/// Virtual points per edge on the failover [`HashRing`]. Enough that
/// per-edge load imbalance stays small at 8 edges without making ring
/// construction noticeable.
pub(crate) const RING_VNODES: usize = 64;

/// Salt mixed into the load seed for ring point placement, so the ring
/// layout is independent of the arrival-time draw stream.
pub(crate) const RING_SALT: u64 = 0x51A6_F00D_CA57_1E55;

/// Salt mixed into the load seed for the *shield* failover ring, so the
/// two rings never share point placement.
pub(crate) const SHIELD_RING_SALT: u64 = 0x5111_E1D0_F00D_CA57;

/// Salt mixed into the fault seed for per-edge shield-failover keys.
pub(crate) const SHIELD_KEY_SALT: u64 = 0x0E06_E25E_11E1_D5A1;

/// Salt mixed into the load seed for per-session title draws, so the
/// popularity stream is independent of arrival times and ring keys.
pub(crate) const TITLE_SALT: u64 = 0xCA7A_1060_0F71_71E5;

/// The title a session at schedule position `i` watches: rank 0 for a
/// single-title catalog (drawing *nothing* — the bit-identity contract
/// with the pre-catalog engine), otherwise a Zipf draw keyed by
/// position, not by RNG-stream order, so title choice never perturbs
/// the arrival draws.
pub(crate) fn title_for(load: &LoadConfig, sampler: Option<&ZipfSampler>, i: usize) -> u32 {
    sampler.map_or(0, |z| {
        z.sample_hash(splitmix64(load.seed ^ TITLE_SALT ^ i as u64)) as u32
    })
}

/// Segment-server capacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Shared uplink, bytes per tick.
    pub capacity_bytes_per_tick: f64,
    /// Each viewer's access-link ceiling, bytes per tick (matches the
    /// default `LinkConfig` serialization rate of 100 bytes/tick).
    pub per_session_bytes_per_tick: f64,
}

impl Default for ServerConfig {
    /// A 4,000 byte/tick uplink feeding 100 byte/tick access links.
    fn default() -> Self {
        Self {
            capacity_bytes_per_tick: 4_000.0,
            per_session_bytes_per_tick: 100.0,
        }
    }
}

/// Session churn: load as a *process* rather than a constant
/// population. On top of the base `LoadConfig::sessions` (which still
/// arrive uniformly over the stagger window), churn adds
/// Poisson-style extra arrivals — exponential inter-arrival gaps drawn
/// from the load seed — each optionally departing after an exponential
/// watch time, plus a flash-crowd ramp: a burst of extra viewers
/// arriving over a short window (the 10x spike the edge tier exists to
/// absorb). All draws are seed-deterministic, and the all-zero default
/// is *exactly* the static population: zero churn draws nothing from
/// the RNG, so the VOD reports are bit-identical to the pre-churn
/// engine (equality-pinned in the tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Extra sessions arriving as a Poisson-style process (0 disables).
    pub churn_sessions: usize,
    /// Mean ticks between churn arrivals.
    pub mean_interarrival_ticks: f64,
    /// Mean ticks a churn viewer watches before leaving (0 = watches
    /// to the end like everyone else).
    pub mean_watch_ticks: f64,
    /// Flash crowd: this many extra sessions... (0 disables)
    pub flash_sessions: usize,
    /// ...arrive starting at this tick...
    pub flash_at_tick: u64,
    /// ...spread uniformly over this ramp (0 = all at once).
    pub flash_ramp_ticks: u64,
}

impl Default for ChurnConfig {
    /// No churn: the static population, bit-identical to the
    /// pre-churn engine.
    fn default() -> Self {
        Self {
            churn_sessions: 0,
            mean_interarrival_ticks: 0.0,
            mean_watch_ticks: 0.0,
            flash_sessions: 0,
            flash_at_tick: 0,
            flash_ramp_ticks: 0,
        }
    }
}

/// Live/linear parameters for the fluid simulator. The simulated event
/// is the manifest's segment list published one sequence per
/// `ticks_per_segment`: sequence `s` goes live at tick
/// `(s - head_start) * ticks_per_segment` (sequences at or below
/// `head_start_segments` are live at tick 0 — the channel has already
/// been running), and at most `dvr_window_segments` sequences stay
/// fetchable. Sessions join at the live edge or the DVR start and a
/// too-slow viewer whose next segment expired skips forward.
///
/// The VOD simulators are the degenerate case: a head start covering
/// the whole manifest plus an infinite window makes every gate
/// vacuous, which the tests pin as *exact* report equality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Ticks between sequence publishes (0 derives the natural pace:
    /// first-segment frames × `ticks_per_frame`).
    pub ticks_per_segment: u64,
    /// DVR depth in segments (`u64::MAX` = infinite).
    pub dvr_window_segments: u64,
    /// Sequences already live at tick 0.
    pub head_start_segments: u64,
    /// Where sessions enter the stream.
    pub join: JoinMode,
}

impl Default for LiveConfig {
    /// Natural pace, 8-segment DVR, a fresh channel (only sequence 0
    /// live at tick 0), sessions joining at the live edge.
    fn default() -> Self {
        Self {
            ticks_per_segment: 0,
            dvr_window_segments: 8,
            head_start_segments: 0,
            join: JoinMode::LiveEdge,
        }
    }
}

/// Load-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Concurrent viewer sessions.
    pub sessions: usize,
    /// Session arrivals are spread uniformly over this many ticks.
    pub stagger_ticks: u64,
    /// Seed for arrival times (and hash sharding).
    pub seed: u64,
    /// Segments buffered before playback starts.
    pub startup_segments: usize,
    /// ABR headroom.
    pub safety: f64,
    /// ABR throughput smoothing.
    pub ewma_alpha: f64,
    /// Simulation step, ticks (larger = faster, coarser; 0 is treated
    /// as 1).
    pub tick_quantum: u64,
    /// Hard stop.
    pub max_ticks: u64,
    /// Session churn on top of the base population.
    pub churn: ChurnConfig,
}

impl LoadConfig {
    /// Total sessions this load creates: the base population plus
    /// every churn and flash-crowd extra. Reports denominate on this.
    #[must_use]
    pub fn population(&self) -> usize {
        self.sessions + self.churn.churn_sessions + self.churn.flash_sessions
    }
}

impl Default for LoadConfig {
    /// 100 sessions arriving over 1,000 ticks, 2-segment startup buffer,
    /// quantum 4, 10M-tick ceiling, no churn.
    fn default() -> Self {
        Self {
            sessions: 100,
            stagger_ticks: 1_000,
            seed: 7,
            startup_segments: 2,
            safety: 0.7,
            ewma_alpha: 0.4,
            tick_quantum: 4,
            max_ticks: 10_000_000,
            churn: ChurnConfig::default(),
        }
    }
}

/// One simulated viewer (quantum-oracle form; the shipping engine
/// aggregates these into counted cohorts — see `calendar`).
#[cfg(test)]
#[derive(Debug, Clone)]
struct SimSession {
    start_tick: u64,
    /// Early departure (churn), if scheduled.
    depart_at: Option<u64>,
    edge: usize,
    abr: AbrController,
    seg: usize,
    rung: usize,
    remaining_bytes: f64,
    fetch_start: u64,
    buffer_ticks: f64,
    fetched: usize,
    started: bool,
    /// Segments to buffer before this session starts playing (the
    /// global knob clamped to what remains after its join point).
    startup_after: usize,
    waiting: bool,
    /// Next segment chosen but not yet requested (live: not published
    /// yet). Never set in VOD mode.
    pending_request: bool,
    playing: bool,
    in_rebuffer: bool,
    startup_ticks: u64,
    rebuffer_events: u32,
    rung_switches: u32,
    rung_sum: u64,
    delivered_bits: u64,
    /// Sum/count/max of per-segment live latency (completion tick
    /// minus publish tick); all zero in VOD mode.
    latency_sum: u64,
    latency_max: u64,
    done_at: Option<u64>,
    /// Reached the end of the title/event (as opposed to departing).
    completed: bool,
}

/// Aggregate result of one load level.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Sessions simulated.
    pub sessions: usize,
    /// Sessions that fetched every segment before `max_ticks`.
    pub completed: usize,
    /// Ticks until the last session finished (or the ceiling).
    pub ticks: u64,
    /// Server-side goodput, bits per tick, over the busy period.
    pub total_goodput_bits_per_tick: f64,
    /// Mean per-session delivered bits per tick of session lifetime.
    pub mean_session_bits_per_tick: f64,
    /// Mean startup delay across sessions that started playing.
    pub mean_startup_ticks: f64,
    /// Sessions that stalled at least once after startup.
    pub rebuffer_sessions: usize,
    /// `rebuffer_sessions / sessions`.
    pub rebuffer_fraction: f64,
    /// Mean rung index across every fetched segment.
    pub mean_rung: f64,
    /// Total rung switches across sessions.
    pub rung_switches: u64,
    /// Sessions that left early (churn departures) instead of playing
    /// to the end.
    pub departed: usize,
}

impl LoadReport {
    /// The well-defined zero report for degenerate inputs (no sessions,
    /// empty manifest, or a tier that cannot move a single byte).
    fn degenerate(sessions: usize) -> Self {
        Self {
            sessions,
            completed: 0,
            ticks: 0,
            total_goodput_bits_per_tick: 0.0,
            mean_session_bits_per_tick: 0.0,
            mean_startup_ticks: 0.0,
            rebuffer_sessions: 0,
            rebuffer_fraction: 0.0,
            mean_rung: 0.0,
            rung_switches: 0,
            departed: 0,
        }
    }
}

/// What the live gates observed during one fluid run (all zero for a
/// VOD run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LiveStats {
    /// Mean live latency over every segment completion: completion
    /// tick minus the segment's publish tick (how far behind the live
    /// edge delivery ran).
    pub mean_latency_ticks: f64,
    /// Worst single-segment live latency.
    pub max_latency_ticks: u64,
    /// Ticks sessions spent blocked on a not-yet-published segment
    /// (live-edge pacing), summed across sessions.
    pub publish_wait_ticks: u64,
    /// Segments skipped because they fell out of the DVR window before
    /// a (too slow) session could fetch them.
    pub window_skips: u64,
}

/// Result of one live load level against a single origin.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveLoadReport {
    /// The session-side aggregate, directly comparable to VOD curves.
    pub load: LoadReport,
    /// Live-specific aggregates.
    pub live: LiveStats,
}

/// Result of one live load level routed through an edge tier.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveEdgeLoadReport {
    /// The edge-tier report (session aggregate + per-edge stats).
    pub edge: EdgeLoadReport,
    /// Live-specific aggregates.
    pub live: LiveStats,
}

/// Result of one load level run under a [`FaultPlan`]: the ordinary
/// edge-tier report plus the live gates (zero for VOD) and the
/// resilience ledger (zero for an empty plan — bit-identically, since
/// an empty plan runs the plan-free engine path).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedEdgeLoadReport {
    /// The edge-tier report (session aggregate + per-edge stats).
    pub edge: EdgeLoadReport,
    /// Live-specific aggregates.
    pub live: LiveStats,
    /// What the faults cost.
    pub resilience: ResilienceStats,
}

/// Per-edge entry in an [`EdgeLoadReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeReportEntry {
    /// Sessions sharded onto this edge.
    pub sessions: usize,
    /// What the edge observed.
    pub stats: EdgeStats,
}

/// Result of one load level routed through an edge tier.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeLoadReport {
    /// The session-side aggregate (same metrics as the single-origin
    /// report, so curves are directly comparable).
    pub load: LoadReport,
    /// Per-edge cache behaviour.
    pub per_edge: Vec<EdgeReportEntry>,
    /// Tier-wide merged stats.
    pub tier: EdgeStats,
    /// Tier-wide hit rate (coalesced waiters count as offloaded).
    pub hit_rate: f64,
    /// Fraction of served bytes that never crossed the origin link.
    pub origin_offload: f64,
}

/// The full hierarchical-CDN topology the fluid simulator can run: an
/// edge tier fronted by a shield (mid-tier) layer, with an optional
/// frequency-based edge-cache admission policy. `shields: 0` is the
/// flat topology — exactly [`EdgeTierConfig`] behavior, bit-identically
/// (the engine never touches the shield code path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnConfig {
    /// The edge tier (the shield tier sits behind it).
    pub tier: EdgeTierConfig,
    /// Shield caches between the edges and the origin (0 = flat).
    /// Edges home onto shields in contiguous near-equal groups; under
    /// a fault plan, a crashed shield's children fail over across a
    /// shield [`HashRing`].
    pub shields: usize,
    /// Per-shield cache budget, bytes.
    pub shield_cache_capacity_bytes: usize,
    /// Each shield's downlink feeding its child edges' fills, bytes
    /// per tick.
    pub shield_capacity_bytes_per_tick: f64,
    /// Edge-cache admission policy (shields always admit: the tier
    /// exists to hold the union working set).
    pub admission: AdmissionPolicy,
}

impl Default for CdnConfig {
    /// The default edge tier behind 4 shields with unbounded caches
    /// and a 4,000 byte/tick downlink each, admitting everything.
    fn default() -> Self {
        Self {
            tier: EdgeTierConfig::default(),
            shields: 4,
            shield_cache_capacity_bytes: usize::MAX,
            shield_capacity_bytes_per_tick: 4_000.0,
            admission: AdmissionPolicy::AdmitAll,
        }
    }
}

/// Result of one load level through the full hierarchy: the edge-tier
/// report plus per-shield stats, the [`TierStats`] rollup, and the
/// live/resilience ledgers (zero when unused).
#[derive(Debug, Clone, PartialEq)]
pub struct CdnLoadReport {
    /// The edge-tier report (session aggregate + per-edge stats). Its
    /// `origin_offload` is the *edge-local* figure — against whatever
    /// parent the edges fill from; `tier.origin_offload()` is the
    /// true-origin figure.
    pub edge: EdgeLoadReport,
    /// Per-shield cache behaviour (`sessions` counts child *edges*).
    pub per_shield: Vec<EdgeReportEntry>,
    /// The two-tier rollup.
    pub tier: TierStats,
    /// `tier.origin_offload()`: fraction of viewer-served bytes that
    /// never crossed the *true* origin link.
    pub origin_offload: f64,
    /// Live-specific aggregates (zero for VOD).
    pub live: LiveStats,
    /// What the faults cost (zero for a plan-free run).
    pub resilience: ResilienceStats,
}

/// Resolved live gates for the fluid engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LiveSim {
    pub(crate) tps: u64,
    pub(crate) dvr: u64,
    pub(crate) head_start: u64,
    pub(crate) join: JoinMode,
}

impl LiveSim {
    fn resolve(live: &LiveConfig, manifest: &Manifest) -> Self {
        let tps = if live.ticks_per_segment > 0 {
            live.ticks_per_segment
        } else {
            // The same pace rule LiveOrigin resolves, so the fluid
            // gates and the transport-level live session agree.
            manifest.natural_ticks_per_segment()
        };
        Self {
            tps,
            dvr: live.dvr_window_segments,
            head_start: live.head_start_segments,
            join: live.join,
        }
    }

    /// Newest sequence live at `now` (capped at the event's last).
    pub(crate) fn live_seq(&self, now: u64, n_segments: usize) -> u64 {
        (self.head_start.saturating_add(now / self.tps)).min(n_segments as u64 - 1)
    }

    /// Oldest sequence still in the DVR window at `now`.
    pub(crate) fn first_seq(&self, now: u64, n_segments: usize) -> u64 {
        crate::ladder::dvr_window_start(self.live_seq(now, n_segments), self.dvr)
    }

    /// The tick sequence `seq` went (or will go) live.
    pub(crate) fn publish_tick(&self, seq: u64) -> u64 {
        seq.saturating_sub(self.head_start).saturating_mul(self.tps)
    }
}

/// Internal engine parameters: the single origin is the 1-edge,
/// everything-prewarmed, nothing-to-fill special case, and VOD is the
/// no-live-gates special case.
pub(crate) struct TierParams {
    pub(crate) edges: usize,
    pub(crate) cache_capacity_bytes: usize,
    pub(crate) edge_capacity: f64,
    pub(crate) per_session: f64,
    pub(crate) origin_capacity: f64,
    pub(crate) sharding: Sharding,
    pub(crate) prewarm: bool,
    pub(crate) origin_down_after: Option<u64>,
    /// Shield caches between the edges and the origin; `0` is the flat
    /// topology — structurally the pre-shield code path.
    pub(crate) shields: usize,
    pub(crate) shield_cache_capacity_bytes: usize,
    /// Each shield's downlink to its child edges, bytes per tick.
    pub(crate) shield_capacity: f64,
    /// Edge-cache admission policy (shields always admit).
    pub(crate) admission: AdmissionPolicy,
    /// Zipf exponent for multi-title runs (unused for one title).
    pub(crate) zipf_s: f64,
    pub(crate) live: Option<LiveSim>,
    /// The resolved fault schedule, or `None` for a plan-free run.
    /// Discipline (same as zero-churn): an *empty* resolved plan is
    /// stored as `None`, so the engine's plan-free fast path — and its
    /// bit-identical reports — are structural, not coincidental.
    pub(crate) faults: Option<FaultSchedule>,
}

impl TierParams {
    pub(crate) fn single_origin(server: &ServerConfig) -> Self {
        Self {
            edges: 1,
            cache_capacity_bytes: usize::MAX,
            edge_capacity: server.capacity_bytes_per_tick,
            per_session: server.per_session_bytes_per_tick,
            origin_capacity: 0.0,
            sharding: Sharding::RoundRobin,
            prewarm: true,
            origin_down_after: None,
            shields: 0,
            shield_cache_capacity_bytes: usize::MAX,
            shield_capacity: 0.0,
            admission: AdmissionPolicy::AdmitAll,
            zipf_s: 1.0,
            live: None,
            faults: None,
        }
    }

    pub(crate) fn tier(t: &EdgeTierConfig) -> Self {
        Self {
            edges: t.edges,
            cache_capacity_bytes: t.cache_capacity_bytes,
            edge_capacity: t.edge_capacity_bytes_per_tick,
            per_session: t.per_session_bytes_per_tick,
            origin_capacity: t.origin_capacity_bytes_per_tick,
            sharding: t.sharding,
            prewarm: t.prewarm,
            origin_down_after: t.origin_down_after,
            shields: 0,
            shield_cache_capacity_bytes: usize::MAX,
            shield_capacity: 0.0,
            admission: AdmissionPolicy::AdmitAll,
            zipf_s: 1.0,
            live: None,
            faults: None,
        }
    }

    pub(crate) fn cdn(c: &CdnConfig) -> Self {
        let mut p = Self::tier(&c.tier);
        p.shields = c.shields;
        p.shield_cache_capacity_bytes = c.shield_cache_capacity_bytes;
        p.shield_capacity = c.shield_capacity_bytes_per_tick;
        p.admission = c.admission;
        p
    }

    pub(crate) fn with_live(mut self, live: &LiveConfig, manifest: &Manifest) -> Self {
        self.live = Some(LiveSim::resolve(live, manifest));
        self
    }

    pub(crate) fn with_zipf(mut self, zipf_s: f64) -> Self {
        self.zipf_s = zipf_s;
        self
    }

    /// Resolves `plan` against this tier. An empty resolution (empty
    /// plan, or every event out of range/degenerate) leaves `faults`
    /// at `None` — the plan-free path, bit-identically.
    pub(crate) fn with_faults(mut self, plan: &FaultPlan) -> Self {
        let resolved = plan.resolve(self.edges, self.shields);
        self.faults = (!resolved.is_empty()).then_some(FaultSchedule {
            seed: plan.seed,
            actions: resolved,
        });
        self
    }

    /// `true` when no session could ever make progress.
    pub(crate) fn degenerate(&self, titles: &[Manifest], load: &LoadConfig) -> bool {
        load.population() == 0
            || titles.is_empty()
            || titles.iter().any(|m| m.segment_count() == 0)
            || self.edges == 0
            || self.edge_capacity.is_nan()
            || self.edge_capacity <= 0.0
            || self.per_session.is_nan()
            || self.per_session <= 0.0
            || (self.shields > 0 && (self.shield_capacity.is_nan() || self.shield_capacity <= 0.0))
            || (titles.len() > 1 && !self.zipf_s.is_finite())
            || self.live.is_some_and(|l| l.tps == 0 || l.dvr == 0)
    }
}

/// One simulated edge: an LRU over `(title, rung, seq)` keys plus the
/// coalescing table of in-flight parent fills (fluid segments are
/// immutable once published, so every fill is generation 0).
pub(crate) struct SimEdge {
    pub(crate) lru: Lru<ObjKey>,
    pub(crate) fills: FillTable<ObjKey, f64>,
    pub(crate) stats: EdgeStats,
    pub(crate) assigned: usize,
    /// Objects filled this quantum but *rejected* by cache admission:
    /// their waiters still wake and download (serve-through without
    /// caching). Cleared every quantum; always empty under
    /// admit-always, so the legacy path never consults it.
    pub(crate) pass: std::collections::BTreeSet<ObjKey>,
}

#[derive(Clone, Copy)]
pub(crate) enum Req {
    Hit,
    /// Waiting on a fill; `true` when this request started it (a state
    /// change the engine's stasis detector must count as progress).
    Wait(bool),
}

impl SimEdge {
    /// A session asks for one segment: cached → hit; fill in flight →
    /// coalesce onto it; otherwise start a fill. Kept as the quantum
    /// oracle's per-session form of [`SimEdge::request_n`].
    #[cfg(test)]
    fn request(&mut self, key: ObjKey, bytes: f64) -> Req {
        if self.lru.touch(&key) {
            self.stats.hits += 1;
            Req::Hit
        } else if self.fills.request(key, 0, || bytes) {
            self.stats.misses += 1;
            Req::Wait(true)
        } else {
            self.stats.coalesced += 1;
            Req::Wait(false)
        }
    }

    /// `n` identical sessions ask for one segment in a single counted
    /// call — the cohort engine's form of [`SimEdge::request`]. Every
    /// stats ledger advances exactly as `n` per-session requests would
    /// (one fill started at most; the rest coalesce), so the per-edge
    /// counters stay identical to the quantum oracle's.
    pub(crate) fn request_n(&mut self, key: ObjKey, bytes: f64, n: u64) -> Req {
        debug_assert!(n > 0, "a cohort request carries at least one session");
        if self.lru.touch(&key) {
            self.stats.hits += n;
            Req::Hit
        } else if self.fills.request(key, 0, || bytes) {
            self.fills.join_many(n - 1);
            self.stats.misses += 1;
            self.stats.coalesced += n - 1;
            Req::Wait(true)
        } else {
            self.fills.join_many(n - 1);
            self.stats.coalesced += n;
            Req::Wait(false)
        }
    }
}

/// The epsilon-stable download-completion threshold for a segment of
/// `segment_bytes`: a transfer is complete once its remaining bytes
/// fall *at or below* this, not exactly to `0.0`.
///
/// The hot loop drains `remaining_bytes -= rate * step` once per
/// quantum, and each subtraction can round by half an ulp — over a
/// 10M-tick run that accumulates to ~1e-4 bytes of drift, so a path
/// that advances the same download analytically (`remaining - k *
/// rate * step`, the cohort engine's fused form) could disagree with
/// the iterated path about *which quantum* crossed zero. The epsilon
/// is sized orders of magnitude above the worst accumulated drift and
/// orders of magnitude below a deliverable byte, so both paths agree
/// on every segment-completion tick (regression-pinned at 10M ticks).
pub(crate) fn completion_eps(segment_bytes: f64) -> f64 {
    segment_bytes.max(1.0) * 1e-8
}

/// Quanta until a download of `remaining` bytes completes at
/// `per_quantum` bytes per quantum under the epsilon-stable rule: the
/// smallest `k >= 1` with `remaining - k * per_quantum <= eps`. This is
/// the analytic (fused) form of the iterated hot-loop drain; the two
/// must agree on completion quanta (see [`completion_eps`]).
// Consumed by the cohort fast path (and the 10M-tick regression pin);
// the iterated hot loop above stays authoritative.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn quanta_to_complete(remaining: f64, per_quantum: f64, eps: f64) -> u64 {
    if remaining <= eps {
        return 0;
    }
    if per_quantum.is_nan() || per_quantum <= 0.0 {
        return u64::MAX;
    }
    let mut k = ((remaining - eps) / per_quantum).ceil().max(1.0) as u64;
    // The division can land a rounding error on either side of the
    // boundary quantum; nudge onto the exact side of the rule.
    while remaining - (k as f64) * per_quantum > eps {
        k += 1;
    }
    while k > 1 && remaining - ((k - 1) as f64) * per_quantum <= eps {
        k -= 1;
    }
    k
}

/// One exponential(mean) draw in ticks (0 for a disabled mean).
fn exp_ticks(rng: &mut Xoroshiro128, mean: f64) -> u64 {
    if !mean.is_finite() || mean <= 0.0 {
        return 0;
    }
    // 1 - u is in (0, 1], so the log is finite and non-positive.
    (-mean * (1.0 - rng.next_f64()).ln()).round() as u64
}

/// The simulated edge tier, optionally prewarmed with every title's
/// whole ladder. Shared verbatim by the cohort engine and the quantum
/// oracle so both start from the identical cache state.
pub(crate) fn build_edges(titles: &[Manifest], p: &TierParams) -> Vec<SimEdge> {
    let mut edges: Vec<SimEdge> = (0..p.edges)
        .map(|_| SimEdge {
            lru: Lru::new(p.cache_capacity_bytes),
            fills: FillTable::new(),
            stats: EdgeStats::default(),
            assigned: 0,
            pass: std::collections::BTreeSet::new(),
        })
        .collect();
    if p.prewarm {
        for e in &mut edges {
            for (ti, m) in titles.iter().enumerate() {
                for (ri, rung) in m.rungs.iter().enumerate() {
                    for (si, seg) in rung.segments.iter().enumerate() {
                        e.lru.insert((ti as u32, ri as u32, si as u32), seg.bytes);
                    }
                }
            }
            e.stats.evictions = e.lru.evictions();
        }
    }
    edges
}

/// The arrival/departure schedule: one `(start_tick, depart_at)` per
/// session that will actually simulate, plus the count of *phantoms*.
/// Shared verbatim by the cohort engine and the quantum oracle so both
/// consume the identical RNG draw sequence.
///
/// The base population draws exactly as the pre-churn engine did (zero
/// churn therefore reproduces it bit-identically); churn and flash
/// arrivals draw afterwards. An exhausted churn schedule terminates
/// the arrival stream *explicitly*: once the clock saturates, no
/// further arrival can ever fall due, so the remaining churn sessions
/// are accounted as phantoms (they count in the report denominator but
/// never enter the simulation) instead of freezing `alive` above zero
/// and spinning the engine to `max_ticks`.
pub(crate) fn build_schedule(load: &LoadConfig) -> (Vec<(u64, Option<u64>)>, usize) {
    let mut rng = Xoroshiro128::new(load.seed);
    let c = load.churn;
    let mut schedule: Vec<(u64, Option<u64>)> = (0..load.sessions)
        .map(|_| (rng.below(load.stagger_ticks + 1), None))
        .collect();
    let mut churn_clock = 0u64;
    let mut phantoms = 0usize;
    for drawn in 0..c.churn_sessions {
        match churn_clock.checked_add(exp_ticks(&mut rng, c.mean_interarrival_ticks)) {
            Some(t) if t < u64::MAX => churn_clock = t,
            _ => {
                phantoms = c.churn_sessions - drawn;
                break;
            }
        }
        let depart = (c.mean_watch_ticks > 0.0)
            .then(|| churn_clock.saturating_add(exp_ticks(&mut rng, c.mean_watch_ticks).max(1)));
        schedule.push((churn_clock, depart));
    }
    for _ in 0..c.flash_sessions {
        let at = c
            .flash_at_tick
            .saturating_add(rng.below(c.flash_ramp_ticks.saturating_add(1)));
        if at == u64::MAX {
            phantoms += 1;
        } else {
            schedule.push((at, None));
        }
    }
    (schedule, phantoms)
}

/// The failover ring, when this run needs one: always under
/// [`Sharding::Ring`], and under *any* fault plan (whatever the
/// sharding, re-homed sessions must land deterministically). Shared by
/// both engines so placements match.
pub(crate) fn build_ring(load: &LoadConfig, p: &TierParams) -> Option<HashRing> {
    (p.sharding == Sharding::Ring || p.faults.is_some())
        .then(|| HashRing::new(p.edges, RING_VNODES, load.seed ^ RING_SALT))
}

/// The session key a schedule position hashes to on the failover ring.
/// One canonical mixing so home placement ([`shard_edge`]) and failover
/// routing agree on the key.
pub(crate) fn ring_key(load: &LoadConfig, i: usize) -> u64 {
    splitmix64(load.seed ^ i as u64)
}

/// The edge a session at schedule position `i` is sharded onto. Shared
/// by both engines so cohort membership matches the oracle's routing.
pub(crate) fn shard_edge(
    load: &LoadConfig,
    p: &TierParams,
    i: usize,
    ring: Option<&HashRing>,
) -> usize {
    match p.sharding {
        Sharding::RoundRobin => i % p.edges,
        Sharding::Hash => (splitmix64(load.seed ^ i as u64) % p.edges as u64) as usize,
        Sharding::Ring => ring
            .expect("Sharding::Ring runs always build the ring")
            .route(ring_key(load, i)),
    }
}

/// The sequence a session arriving at `start_tick` joins at, and the
/// startup-buffer depth clamped to what remains after that join point.
pub(crate) fn join_point(
    p: &TierParams,
    load: &LoadConfig,
    start_tick: u64,
    n_segments: usize,
) -> (usize, usize) {
    let join_seq = p.live.map_or(0, |l| match l.join {
        JoinMode::LiveEdge => l.live_seq(start_tick, n_segments),
        JoinMode::DvrStart => l.first_seq(start_tick, n_segments),
    }) as usize;
    let startup_after = load.startup_segments.clamp(1, n_segments - join_seq);
    (join_seq, startup_after)
}

/// The retired per-session quantum engine, kept as the test oracle the
/// cohort engine is equality-pinned against (see `calendar`): it
/// advances *every* arrived session every quantum, which is exactly the
/// O(ticks × population) cost profile the event-calendar rewrite
/// removed — and exactly why it makes a trustworthy reference.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::{BTreeSet, BinaryHeap};

    /// The shared fluid engine. Returns the sessions, the edges, the final
    /// simulation tick, the live-gate aggregates (zero for VOD), and the
    /// count of phantom sessions (arrivals a saturated churn clock could
    /// never schedule — they denominate the report but never simulate).
    fn run_fluid(
        manifest: &Manifest,
        load: &LoadConfig,
        p: &TierParams,
    ) -> (Vec<SimSession>, Vec<SimEdge>, u64, LiveStats, usize) {
        let n_segments = manifest.segment_count();
        let q = load.tick_quantum.max(1);

        let mut edges = build_edges(std::slice::from_ref(manifest), p);
        let (schedule, phantoms) = build_schedule(load);

        let ring = build_ring(load, p);
        let mut sessions: Vec<SimSession> = schedule
            .into_iter()
            .enumerate()
            .map(|(i, (start_tick, depart_at))| {
                let edge = shard_edge(load, p, i, ring.as_ref());
                let (join_seq, startup_after) = join_point(p, load, start_tick, n_segments);
                SimSession {
                    start_tick,
                    depart_at,
                    edge,
                    abr: AbrController::new(load.ewma_alpha, load.safety),
                    seg: join_seq,
                    rung: 0,
                    remaining_bytes: 0.0,
                    fetch_start: start_tick,
                    buffer_ticks: 0.0,
                    fetched: 0,
                    started: false,
                    startup_after,
                    waiting: false,
                    pending_request: false,
                    playing: false,
                    in_rebuffer: false,
                    startup_ticks: 0,
                    rebuffer_events: 0,
                    rung_switches: 0,
                    rung_sum: 0,
                    delivered_bits: 0,
                    latency_sum: 0,
                    latency_max: 0,
                    done_at: None,
                    completed: false,
                }
            })
            .collect();
        for s in &sessions {
            edges[s.edge].assigned += 1;
        }
        let all_arrived_by = sessions.iter().map(|s| s.start_tick).max().unwrap_or(0);

        // Alive-set bookkeeping: a quantum touches only sessions that have
        // arrived and not yet finished. Arrivals pop off a start-tick-sorted
        // cursor, departures off a min-heap, and the per-quantum departure
        // sweep / `arrived` recount over the whole population are gone —
        // the reports are bit-identical to the full-scan engine (golden-
        // pinned in the tests).
        let mut arrival_order: Vec<u32> = (0..sessions.len() as u32).collect();
        arrival_order.sort_by_key(|&i| sessions[i as usize].start_tick);
        let mut next_arrival = 0usize;
        let mut departures: BinaryHeap<Reverse<(u64, u32)>> = sessions
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.depart_at.map(|d| Reverse((d, i as u32))))
            .collect();
        let mut active: BTreeSet<u32> = BTreeSet::new();
        let mut scratch: Vec<u32> = Vec::with_capacity(sessions.len());

        let mut now = 0u64;
        let mut alive = sessions.len();
        let mut downloading = vec![0usize; p.edges];
        let mut last_first_seq = 0u64;
        let mut publish_wait_ticks = 0u64;
        let mut window_skips = 0u64;
        while alive > 0 && now < load.max_ticks {
            // Arrivals due this quantum activate...
            while next_arrival < arrival_order.len() {
                let i = arrival_order[next_arrival];
                if sessions[i as usize].start_tick > now {
                    break;
                }
                active.insert(i);
                next_arrival += 1;
            }
            // ...and churn departures happen on the quantum they fall due.
            while let Some(&Reverse((d, i))) = departures.peek() {
                if d > now {
                    break;
                }
                departures.pop();
                let s = &mut sessions[i as usize];
                if s.done_at.is_none() {
                    s.done_at = Some(now);
                    alive -= 1;
                    active.remove(&i);
                }
            }
            let arrived = active.len();
            if arrived == 0 {
                now += q;
                continue;
            }
            let step = q as f64;
            let mut progressed = false;

            // Live DVR-window maintenance: segments that left the window
            // are invalidated from every edge cache (the origin's purge,
            // not capacity pressure — eviction counters are untouched).
            if let Some(l) = p.live {
                let first = l.first_seq(now, n_segments);
                for seq in last_first_seq..first {
                    for ri in 0..manifest.rungs.len() {
                        for e in edges.iter_mut() {
                            if e.lru.remove(&(0, ri as u32, seq as u32)).is_some() {
                                e.stats.invalidations += 1;
                            }
                        }
                    }
                }
                last_first_seq = last_first_seq.max(first);
            }

            // Origin fills: every in-flight fill shares the origin uplink
            // max-min-equally; an outage freezes them all. Fills land
            // *before* the downlink shares are computed, so waiters waking
            // this quantum count toward their edge's split.
            let origin_down = p.origin_down_after.is_some_and(|t| now >= t);
            let total_fills: usize = edges.iter().map(|e| e.fills.len()).sum();
            if total_fills > 0 && !origin_down && p.origin_capacity > 0.0 {
                let fill_rate = p.origin_capacity / total_fills as f64;
                for e in &mut edges {
                    let done: Vec<ObjKey> = e
                        .fills
                        .iter_mut()
                        .filter_map(|(k, rem)| {
                            *rem -= fill_rate * step;
                            let total = manifest.rungs[k.0 .1 as usize].segments[k.0 .2 as usize]
                                .bytes as f64;
                            (*rem <= completion_eps(total)).then_some(k.0)
                        })
                        .collect();
                    for k in done {
                        e.fills.complete(&k, 0);
                        let bytes = manifest.rungs[k.1 as usize].segments[k.2 as usize].bytes;
                        e.stats.origin_bytes += bytes as u64;
                        e.lru.insert(k, bytes);
                        e.stats.evictions = e.lru.evictions();
                    }
                }
                progressed = true;
            }

            // Per-edge downlink shares: a waiter whose object just landed
            // will download this quantum, so it counts — otherwise a burst
            // of waking waiters would each claim a full share and
            // oversubscribe the edge link. A publish-gated session counts
            // only if its segment is now live *and* already cached (it
            // will request and hit below).
            downloading.iter_mut().for_each(|d| *d = 0);
            scratch.clear();
            scratch.extend(active.iter().copied());
            for &i in &scratch {
                let s = &sessions[i as usize];
                let will_download = if s.pending_request {
                    let l = p.live.expect("pending only in live mode");
                    let rung = if s.fetched == 0 {
                        0
                    } else {
                        s.abr.pick(manifest, s.seg, None)
                    };
                    s.seg as u64 <= l.live_seq(now, n_segments)
                        && edges[s.edge].lru.contains(&(0, rung as u32, s.seg as u32))
                } else if s.waiting {
                    edges[s.edge]
                        .lru
                        .contains(&(0, s.rung as u32, s.seg as u32))
                } else {
                    true
                };
                if will_download {
                    downloading[s.edge] += 1;
                }
            }

            for &i in &scratch {
                let s = &mut sessions[i as usize];
                let e = &mut edges[s.edge];
                if !s.started {
                    s.started = true;
                    let live_now = p
                        .live
                        .map_or(true, |l| s.seg as u64 <= l.live_seq(now, n_segments));
                    if live_now {
                        let bytes = manifest.rungs[0].segments[s.seg].bytes as f64;
                        match e.request((0, 0, s.seg as u32), bytes) {
                            Req::Hit => s.remaining_bytes += bytes,
                            Req::Wait(new_fill) => {
                                s.waiting = true;
                                progressed |= new_fill;
                            }
                        }
                    } else {
                        s.pending_request = true;
                    }
                }
                // Playout drains while the next segment downloads (or while
                // the session waits on a fill or the live edge).
                if s.playing {
                    s.buffer_ticks -= step;
                    if s.buffer_ticks < 0.0 {
                        if !s.in_rebuffer {
                            s.in_rebuffer = true;
                            s.rebuffer_events += 1;
                        }
                        s.buffer_ticks = 0.0;
                    }
                }
                // A segment chosen but not yet requested: the live edge
                // had not published it. Re-check the window now.
                if s.pending_request {
                    let l = p.live.expect("pending only in live mode");
                    let first = l.first_seq(now, n_segments) as usize;
                    if s.seg < first {
                        // Too slow: the segment expired out of the DVR
                        // window before we ever asked. Skip forward.
                        window_skips += (first - s.seg) as u64;
                        s.seg = first;
                    }
                    if s.seg as u64 <= l.live_seq(now, n_segments) {
                        s.pending_request = false;
                        let rung = if s.fetched == 0 {
                            0
                        } else {
                            s.abr.pick(manifest, s.seg, None)
                        };
                        if s.fetched > 0 && rung != s.rung {
                            s.rung_switches += 1;
                        }
                        s.rung = rung;
                        s.fetch_start = now;
                        let bytes = manifest.rungs[rung].segments[s.seg].bytes as f64;
                        match e.request((0, rung as u32, s.seg as u32), bytes) {
                            Req::Hit => s.remaining_bytes += bytes,
                            Req::Wait(new_fill) => {
                                s.waiting = true;
                                progressed |= new_fill;
                            }
                        }
                    } else {
                        publish_wait_ticks += q;
                        continue;
                    }
                }
                if s.waiting {
                    let key = (0, s.rung as u32, s.seg as u32);
                    let bytes = manifest.rungs[s.rung].segments[s.seg].bytes as f64;
                    if e.lru.touch(&key) {
                        // The fill landed: start the edge-leg download, with
                        // `fetch_start` still at request time so the ABR
                        // sees the full wait. The fall-through download
                        // decrement below marks the progress.
                        s.waiting = false;
                        s.remaining_bytes += bytes;
                    } else {
                        if !e.fills.contains(&key, 0) {
                            // The filled object was evicted before this
                            // session could download it: re-request.
                            e.stats.misses += 1;
                            e.fills.request(key, 0, || bytes);
                            progressed = true;
                        }
                        continue;
                    }
                }
                let rate = (p.edge_capacity / downloading[s.edge].max(1) as f64).min(p.per_session);
                s.remaining_bytes -= rate * step;
                progressed = true;
                let entry = &manifest.rungs[s.rung].segments[s.seg];
                if s.remaining_bytes > completion_eps(entry.bytes as f64) {
                    continue;
                }
                // Segment complete at the end of this quantum.
                let end = now + q;
                let elapsed = end.saturating_sub(s.fetch_start).max(1);
                s.abr.observe((entry.bytes * 8) as f64, elapsed as f64);
                s.delivered_bits += (entry.bytes * 8) as u64;
                s.rung_sum += s.rung as u64;
                s.buffer_ticks += (entry.frames as u64 * manifest.ticks_per_frame) as f64;
                s.in_rebuffer = false;
                s.fetched += 1;
                e.stats.served_bytes += entry.bytes as u64;
                if let Some(l) = p.live {
                    let lat = end.saturating_sub(l.publish_tick(s.seg as u64));
                    s.latency_sum += lat;
                    s.latency_max = s.latency_max.max(lat);
                }
                if !s.playing && s.fetched >= s.startup_after {
                    s.playing = true;
                    s.startup_ticks = end - s.start_tick;
                }
                s.seg += 1;
                if s.seg == n_segments {
                    s.done_at = Some(end);
                    s.completed = true;
                    alive -= 1;
                    continue;
                }
                // Live gates for the next segment, evaluated at the
                // completion tick (the same tick the next quantum sees).
                if let Some(l) = p.live {
                    let first = l.first_seq(end, n_segments) as usize;
                    if s.seg < first {
                        window_skips += (first - s.seg) as u64;
                        s.seg = first;
                    }
                    if s.seg as u64 > l.live_seq(end, n_segments) {
                        // Caught up with the live edge: wait for the next
                        // publish, discarding the download overshoot (the
                        // link idles — pacing, not congestion).
                        s.pending_request = true;
                        s.remaining_bytes = 0.0;
                        continue;
                    }
                }
                let next_rung = s.abr.pick(manifest, s.seg, None);
                if next_rung != s.rung {
                    s.rung_switches += 1;
                }
                s.rung = next_rung;
                let bytes = manifest.rungs[s.rung].segments[s.seg].bytes as f64;
                match e.request((0, s.rung as u32, s.seg as u32), bytes) {
                    // A hit carries this quantum's download overshoot into
                    // the next segment, exactly like the single-origin path.
                    Req::Hit => s.remaining_bytes += bytes,
                    Req::Wait(new_fill) => {
                        s.waiting = true;
                        s.remaining_bytes = 0.0;
                        progressed |= new_fill;
                    }
                }
                s.fetch_start = end;
            }
            active.retain(|&i| sessions[i as usize].done_at.is_none());
            now += q;
            // Stasis: every arrival has happened and a whole quantum passed
            // with no byte moved anywhere (e.g. an origin outage with cold
            // caches) — and no publish or departure is still due, so the
            // state can never change again.
            if !progressed && now > all_arrived_by {
                let publishes_due = p
                    .live
                    .is_some_and(|l| l.live_seq(now, n_segments) < n_segments as u64 - 1);
                // A pending session will request (and progress) once its
                // segment publishes — including the final one, which may
                // have gone live this very quantum without being consumed
                // yet.
                let waiters_due = active.iter().any(|&i| sessions[i as usize].pending_request);
                // Entries due at or before `now` were popped at the loop
                // top, so anything left in the heap is a future departure.
                let departures_due = departures
                    .iter()
                    .any(|&Reverse((_, i))| sessions[i as usize].done_at.is_none());
                if !publishes_due && !waiters_due && !departures_due {
                    break;
                }
            }
        }
        let fetched_total: u64 = sessions.iter().map(|s| s.fetched as u64).sum();
        let latency_sum: u64 = sessions.iter().map(|s| s.latency_sum).sum();
        let live_stats = LiveStats {
            mean_latency_ticks: latency_sum as f64 / fetched_total.max(1) as f64,
            max_latency_ticks: sessions.iter().map(|s| s.latency_max).max().unwrap_or(0),
            publish_wait_ticks,
            window_skips,
        };
        (sessions, edges, now, live_stats, phantoms)
    }

    /// Folds finished sessions into the aggregate report.
    fn finish(sessions: &[SimSession], n_sessions: usize, now: u64) -> LoadReport {
        let end_tick = sessions
            .iter()
            .filter_map(|s| s.done_at)
            .max()
            .unwrap_or(now)
            .max(1);
        let completed = sessions.iter().filter(|s| s.completed).count();
        let departed = sessions
            .iter()
            .filter(|s| s.done_at.is_some() && !s.completed)
            .count();
        let total_bits: u64 = sessions.iter().map(|s| s.delivered_bits).sum();
        let mean_session_rate = sessions
            .iter()
            .map(|s| {
                let end = s.done_at.unwrap_or(now).max(s.start_tick + 1);
                s.delivered_bits as f64 / (end - s.start_tick) as f64
            })
            .sum::<f64>()
            / n_sessions.max(1) as f64;
        let started: Vec<&SimSession> = sessions.iter().filter(|s| s.playing).collect();
        let mean_startup = if started.is_empty() {
            0.0
        } else {
            started.iter().map(|s| s.startup_ticks as f64).sum::<f64>() / started.len() as f64
        };
        let rebuffer_sessions = sessions.iter().filter(|s| s.rebuffer_events > 0).count();
        let fetched_total: u64 = sessions.iter().map(|s| s.fetched as u64).sum();
        let rung_sum: u64 = sessions.iter().map(|s| s.rung_sum).sum();
        LoadReport {
            sessions: n_sessions,
            completed,
            ticks: end_tick,
            total_goodput_bits_per_tick: total_bits as f64 / end_tick as f64,
            mean_session_bits_per_tick: mean_session_rate,
            mean_startup_ticks: mean_startup,
            rebuffer_sessions,
            rebuffer_fraction: rebuffer_sessions as f64 / n_sessions.max(1) as f64,
            mean_rung: rung_sum as f64 / fetched_total.max(1) as f64,
            rung_switches: sessions.iter().map(|s| u64::from(s.rung_switches)).sum(),
            departed,
        }
    }

    /// One oracle run, folded to the same `(report, edges, live)`
    /// shape the cohort engine returns, for equality pins.
    pub(crate) fn run(
        manifest: &Manifest,
        load: &LoadConfig,
        p: &TierParams,
    ) -> (LoadReport, Vec<SimEdge>, LiveStats) {
        let (sessions, edges, now, live_stats, phantoms) = run_fluid(manifest, load, p);
        let n = sessions.len() + phantoms;
        (finish(&sessions, n, now), edges, live_stats)
    }
}

/// Runs `load.sessions` concurrent viewers against one origin server.
///
/// Entirely deterministic: identical inputs give an identical report.
/// Degenerate inputs (zero sessions, an empty manifest, a zero- or
/// NaN-capacity uplink) return a well-defined all-zero report instead
/// of panicking or spinning to `max_ticks`.
#[must_use]
pub fn simulate_load(manifest: &Manifest, server: &ServerConfig, load: &LoadConfig) -> LoadReport {
    let p = TierParams::single_origin(server);
    if p.degenerate(std::slice::from_ref(manifest), load) {
        return LoadReport::degenerate(load.population());
    }
    crate::calendar::run_cohorts(std::slice::from_ref(manifest), load, &p).report
}

/// Runs `load.sessions` concurrent viewers sharded across an edge tier.
///
/// Misses coalesce into shared origin fills; hits are served from each
/// edge's own downlink, so tier capacity scales with edge count instead
/// of being pinned to one uplink. Deterministic, with the same
/// degenerate-input guarantees as [`simulate_load`].
#[must_use]
pub fn simulate_edge_load(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    load: &LoadConfig,
) -> EdgeLoadReport {
    run_edge(manifest, load, TierParams::tier(tier)).0
}

/// Runs `load` as a *live* audience against one origin server: the
/// manifest's segments publish one per `live.ticks_per_segment`,
/// sessions join at the live edge or the DVR start, and a rolling
/// window bounds what is fetchable. With an infinite window, a head
/// start covering the whole title, and `JoinMode::DvrStart`, the
/// session-side report equals [`simulate_load`]'s *exactly* (the live
/// gates all become vacuous — equality-pinned in the tests).
#[must_use]
pub fn simulate_live_load(
    manifest: &Manifest,
    server: &ServerConfig,
    live: &LiveConfig,
    load: &LoadConfig,
) -> LiveLoadReport {
    let p = TierParams::single_origin(server).with_live(live, manifest);
    if p.degenerate(std::slice::from_ref(manifest), load) {
        return LiveLoadReport {
            load: LoadReport::degenerate(load.population()),
            live: LiveStats::default(),
        };
    }
    let run = crate::calendar::run_cohorts(std::slice::from_ref(manifest), load, &p);
    LiveLoadReport {
        load: run.report,
        live: run.live,
    }
}

/// [`simulate_live_load`] through an edge tier: the hard case an edge
/// tier exists for — every viewer wants the same just-published
/// live-edge segment, which is cached *nowhere* until exactly one
/// coalesced fill per edge lands it.
#[must_use]
pub fn simulate_live_edge_load(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    live: &LiveConfig,
    load: &LoadConfig,
) -> LiveEdgeLoadReport {
    let (edge, live_stats) = run_edge(
        manifest,
        load,
        TierParams::tier(tier).with_live(live, manifest),
    );
    LiveEdgeLoadReport {
        edge,
        live: live_stats,
    }
}

/// [`simulate_edge_load`] under a [`FaultPlan`]: edges crash and
/// restart, the origin flaps, links degrade — all scheduled on the
/// engine's own event calendar, so the run stays deterministic at any
/// scale. A crashed edge's sessions re-home across the failover ring
/// to survivors (and fail back on restart); an empty plan runs the
/// plan-free path bit-identically.
#[must_use]
pub fn simulate_edge_load_faulted(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    plan: &FaultPlan,
    load: &LoadConfig,
) -> FaultedEdgeLoadReport {
    let (edge, live, resilience) =
        run_edge_resilient(manifest, load, TierParams::tier(tier).with_faults(plan));
    FaultedEdgeLoadReport {
        edge,
        live,
        resilience,
    }
}

/// [`simulate_live_edge_load`] under a [`FaultPlan`] — the composed
/// worst case ROADMAP item 3 asks for: a flash crowd arriving while an
/// edge crashes and the origin flaps, in one deterministic run.
#[must_use]
pub fn simulate_live_edge_load_faulted(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    live: &LiveConfig,
    plan: &FaultPlan,
    load: &LoadConfig,
) -> FaultedEdgeLoadReport {
    let (edge, live_stats, resilience) = run_edge_resilient(
        manifest,
        load,
        TierParams::tier(tier)
            .with_live(live, manifest)
            .with_faults(plan),
    );
    FaultedEdgeLoadReport {
        edge,
        live: live_stats,
        resilience,
    }
}

/// [`edge_capacity_knee_bisect`] under a [`FaultPlan`] — how far the
/// knee retreats as the plan takes edges away.
#[must_use]
pub fn faulted_edge_capacity_knee_bisect(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    plan: &FaultPlan,
    counts: &[usize],
    base: &LoadConfig,
    stall_tolerance: f64,
) -> Option<usize> {
    knee_bisect(
        counts,
        |sessions| {
            simulate_edge_load_faulted(manifest, tier, plan, &LoadConfig { sessions, ..*base })
                .edge
                .load
                .rebuffer_fraction
        },
        stall_tolerance,
    )
}

/// The shared edge-report assembly.
fn run_edge(manifest: &Manifest, load: &LoadConfig, p: TierParams) -> (EdgeLoadReport, LiveStats) {
    let (edge, live, _) = run_edge_resilient(manifest, load, p);
    (edge, live)
}

/// [`run_edge`] keeping the resilience ledger (all zero for a
/// plan-free run).
fn run_edge_resilient(
    manifest: &Manifest,
    load: &LoadConfig,
    p: TierParams,
) -> (EdgeLoadReport, LiveStats, ResilienceStats) {
    if p.degenerate(std::slice::from_ref(manifest), load) {
        return (
            EdgeLoadReport {
                load: LoadReport::degenerate(load.population()),
                per_edge: Vec::new(),
                tier: EdgeStats::default(),
                hit_rate: 0.0,
                origin_offload: 0.0,
            },
            LiveStats::default(),
            ResilienceStats::default(),
        );
    }
    let run = crate::calendar::run_cohorts(std::slice::from_ref(manifest), load, &p);
    (
        assemble_edge_report(run.report, &run.edges),
        run.live,
        run.resilience,
    )
}

/// Folds per-edge counters into the tier-level report shape (shared by
/// the shipping engine and the test oracle's equality pins).
pub(crate) fn assemble_edge_report(load: LoadReport, edges: &[SimEdge]) -> EdgeLoadReport {
    let per_edge: Vec<EdgeReportEntry> = edges
        .iter()
        .map(|e| EdgeReportEntry {
            sessions: e.assigned,
            stats: e.stats,
        })
        .collect();
    let tier_stats = per_edge
        .iter()
        .fold(EdgeStats::default(), |acc, e| acc.merged(&e.stats));
    EdgeLoadReport {
        load,
        per_edge,
        hit_rate: tier_stats.hit_rate(),
        origin_offload: tier_stats.origin_offload(),
        tier: tier_stats,
    }
}

/// Sweeps session counts and reports one [`LoadReport`] per level.
#[must_use]
pub fn capacity_curve(
    manifest: &Manifest,
    server: &ServerConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<LoadReport> {
    counts
        .iter()
        .map(|&sessions| simulate_load(manifest, server, &LoadConfig { sessions, ..*base }))
        .collect()
}

/// Sweeps session counts through an edge tier.
#[must_use]
pub fn edge_capacity_curve(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<EdgeLoadReport> {
    counts
        .iter()
        .map(|&sessions| simulate_edge_load(manifest, tier, &LoadConfig { sessions, ..*base }))
        .collect()
}

/// The capacity knee: the largest swept session count at which at most
/// `stall_tolerance` of sessions rebuffered. `None` on an empty curve
/// or when even the smallest level stalls more than that.
#[must_use]
pub fn capacity_knee(curve: &[LoadReport], stall_tolerance: f64) -> Option<usize> {
    curve
        .iter()
        .filter(|r| r.rebuffer_fraction <= stall_tolerance)
        .map(|r| r.sessions)
        .max()
}

/// [`capacity_knee`] over an edge-tier curve.
#[must_use]
pub fn edge_capacity_knee(curve: &[EdgeLoadReport], stall_tolerance: f64) -> Option<usize> {
    curve
        .iter()
        .filter(|r| r.load.rebuffer_fraction <= stall_tolerance)
        .map(|r| r.load.sessions)
        .max()
}

/// Sweeps live session counts through an edge tier.
#[must_use]
pub fn live_edge_capacity_curve(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    live: &LiveConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<LiveEdgeLoadReport> {
    counts
        .iter()
        .map(|&sessions| {
            simulate_live_edge_load(manifest, tier, live, &LoadConfig { sessions, ..*base })
        })
        .collect()
}

/// [`capacity_knee`] over a live edge-tier curve.
#[must_use]
pub fn live_edge_capacity_knee(
    curve: &[LiveEdgeLoadReport],
    stall_tolerance: f64,
) -> Option<usize> {
    curve
        .iter()
        .filter(|r| r.edge.load.rebuffer_fraction <= stall_tolerance)
        .map(|r| r.edge.load.sessions)
        .max()
}

/// [`capacity_curve`] with its per-count shards fanned out on `pool`.
///
/// Each swept session count is one complete, independent simulator run
/// (runs share nothing: the origin uplink, fill tables and RNG streams
/// all live inside a run), so the points parallelise perfectly; the
/// merge collects reports **by count index**, not completion order.
/// Bit-identical to the sequential driver for any worker count and any
/// completion interleaving — property-pinned in the test suite.
#[must_use]
pub fn capacity_curve_on(
    pool: &WorkerPool,
    manifest: &Manifest,
    server: &ServerConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<LoadReport> {
    pool.map(counts, |&sessions| {
        simulate_load(manifest, server, &LoadConfig { sessions, ..*base })
    })
}

/// [`edge_capacity_curve`] with its per-count shards on `pool` —
/// deterministic merge by count index, bit-identical to sequential.
#[must_use]
pub fn edge_capacity_curve_on(
    pool: &WorkerPool,
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<EdgeLoadReport> {
    pool.map(counts, |&sessions| {
        simulate_edge_load(manifest, tier, &LoadConfig { sessions, ..*base })
    })
}

/// [`live_edge_capacity_curve`] with its per-count shards on `pool` —
/// deterministic merge by count index, bit-identical to sequential.
#[must_use]
pub fn live_edge_capacity_curve_on(
    pool: &WorkerPool,
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    live: &LiveConfig,
    counts: &[usize],
    base: &LoadConfig,
) -> Vec<LiveEdgeLoadReport> {
    pool.map(counts, |&sessions| {
        simulate_live_edge_load(manifest, tier, live, &LoadConfig { sessions, ..*base })
    })
}

/// The degenerate-input guard the bisecting knees share: callers may
/// pass unsorted or duplicated population points (sweep configs are
/// often hand-edited); the search needs them strictly increasing.
fn bisect_counts(counts: &[usize]) -> Vec<usize> {
    let mut counts = counts.to_vec();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Shared bisection over a sweep's session counts: the largest count
/// whose simulated stall fraction meets `tol`, probing O(log n) counts
/// instead of materialising the whole curve. Assumes stalling is
/// monotone in load — true of every BENCH sweep, and the tests pin
/// equality with the curve-scan knee there. `None` on an empty sweep
/// or when even the smallest count stalls.
fn knee_bisect(counts: &[usize], mut stalls: impl FnMut(usize) -> f64, tol: f64) -> Option<usize> {
    let counts = bisect_counts(counts);
    if counts.is_empty() || stalls(counts[0]) > tol {
        return None;
    }
    // Invariant: counts[lo] passes, everything above hi fails.
    let (mut lo, mut hi) = (0, counts.len() - 1);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if stalls(counts[mid]) <= tol {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(counts[lo])
}

/// [`capacity_knee`] by bisection: simulates only the probed session
/// counts instead of the whole [`capacity_curve`]. Input counts may be
/// unsorted or contain duplicates.
#[must_use]
pub fn capacity_knee_bisect(
    manifest: &Manifest,
    server: &ServerConfig,
    counts: &[usize],
    base: &LoadConfig,
    stall_tolerance: f64,
) -> Option<usize> {
    knee_bisect(
        counts,
        |sessions| {
            simulate_load(manifest, server, &LoadConfig { sessions, ..*base }).rebuffer_fraction
        },
        stall_tolerance,
    )
}

/// [`edge_capacity_knee`] by bisection over an edge tier.
#[must_use]
pub fn edge_capacity_knee_bisect(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    counts: &[usize],
    base: &LoadConfig,
    stall_tolerance: f64,
) -> Option<usize> {
    knee_bisect(
        counts,
        |sessions| {
            simulate_edge_load(manifest, tier, &LoadConfig { sessions, ..*base })
                .load
                .rebuffer_fraction
        },
        stall_tolerance,
    )
}

/// [`live_edge_capacity_knee`] by bisection over a live edge tier.
#[must_use]
pub fn live_edge_capacity_knee_bisect(
    manifest: &Manifest,
    tier: &EdgeTierConfig,
    live: &LiveConfig,
    counts: &[usize],
    base: &LoadConfig,
    stall_tolerance: f64,
) -> Option<usize> {
    knee_bisect(
        counts,
        |sessions| {
            simulate_live_edge_load(manifest, tier, live, &LoadConfig { sessions, ..*base })
                .edge
                .load
                .rebuffer_fraction
        },
        stall_tolerance,
    )
}

/// Runs `load.sessions` across the full hierarchical CDN: viewers pick
/// titles by the catalog's Zipf law, shard onto edges, edge misses
/// coalesce behind the edge's home shield, and only *shield* misses
/// cross the true origin link. With `shields: 0` and a single-title
/// catalog this is [`simulate_edge_load`] bit-identically (the pins in
/// the tests hold it there).
#[must_use]
pub fn simulate_cdn_load(catalog: &Catalog, cdn: &CdnConfig, load: &LoadConfig) -> CdnLoadReport {
    run_cdn(
        catalog,
        load,
        TierParams::cdn(cdn).with_zipf(catalog.zipf_s),
    )
}

/// [`simulate_cdn_load`] for a live audience: the live gates apply to
/// title 0 (live catalogs are single-title — a live event *is* one
/// title), and the shield tier absorbs the per-edge thundering herd on
/// each just-published segment.
#[must_use]
pub fn simulate_live_cdn_load(
    catalog: &Catalog,
    cdn: &CdnConfig,
    live: &LiveConfig,
    load: &LoadConfig,
) -> CdnLoadReport {
    let p = TierParams::cdn(cdn)
        .with_live(live, catalog.title(0))
        .with_zipf(catalog.zipf_s);
    run_cdn(catalog, load, p)
}

/// [`simulate_cdn_load`] under a [`FaultPlan`]: shields crash and
/// restart alongside edges, with a crashed shield's child edges
/// failing over across the shield ring to survivors (and failing back
/// on restart).
#[must_use]
pub fn simulate_cdn_load_faulted(
    catalog: &Catalog,
    cdn: &CdnConfig,
    plan: &FaultPlan,
    load: &LoadConfig,
) -> CdnLoadReport {
    let p = TierParams::cdn(cdn)
        .with_zipf(catalog.zipf_s)
        .with_faults(plan);
    run_cdn(catalog, load, p)
}

/// The composed worst case through the full hierarchy: a live flash
/// crowd while an edge crashes, a shield crashes, and the origin flaps
/// — one deterministic run.
#[must_use]
pub fn simulate_live_cdn_load_faulted(
    catalog: &Catalog,
    cdn: &CdnConfig,
    live: &LiveConfig,
    plan: &FaultPlan,
    load: &LoadConfig,
) -> CdnLoadReport {
    let p = TierParams::cdn(cdn)
        .with_live(live, catalog.title(0))
        .with_zipf(catalog.zipf_s)
        .with_faults(plan);
    run_cdn(catalog, load, p)
}

/// [`edge_capacity_knee_bisect`] through the full hierarchy.
#[must_use]
pub fn cdn_capacity_knee_bisect(
    catalog: &Catalog,
    cdn: &CdnConfig,
    counts: &[usize],
    base: &LoadConfig,
    stall_tolerance: f64,
) -> Option<usize> {
    knee_bisect(
        counts,
        |sessions| {
            simulate_cdn_load(catalog, cdn, &LoadConfig { sessions, ..*base })
                .edge
                .load
                .rebuffer_fraction
        },
        stall_tolerance,
    )
}

/// The shared CDN run: degenerate guard, calendar run, rollup.
fn run_cdn(catalog: &Catalog, load: &LoadConfig, p: TierParams) -> CdnLoadReport {
    if p.degenerate(catalog.titles(), load) {
        return CdnLoadReport {
            edge: EdgeLoadReport {
                load: LoadReport::degenerate(load.population()),
                per_edge: Vec::new(),
                tier: EdgeStats::default(),
                hit_rate: 0.0,
                origin_offload: 0.0,
            },
            per_shield: Vec::new(),
            tier: TierStats::default(),
            origin_offload: 0.0,
            live: LiveStats::default(),
            resilience: ResilienceStats::default(),
        };
    }
    let run = crate::calendar::run_cohorts(catalog.titles(), load, &p);
    let per_shield: Vec<EdgeReportEntry> = run
        .shields
        .iter()
        .map(|s| EdgeReportEntry {
            sessions: s.assigned,
            stats: s.stats,
        })
        .collect();
    let per_edge_stats: Vec<EdgeStats> = run.edges.iter().map(|e| e.stats).collect();
    let per_shield_stats: Vec<EdgeStats> = per_shield.iter().map(|s| s.stats).collect();
    let tier = TierStats::rollup(&per_edge_stats, &per_shield_stats);
    CdnLoadReport {
        edge: assemble_edge_report(run.report, &run.edges),
        per_shield,
        origin_offload: tier.origin_offload(),
        tier,
        live: run.live,
        resilience: run.resilience,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{encode_ladder, LadderConfig};
    use video::synth::SequenceGen;

    fn manifest() -> Manifest {
        let frames = SequenceGen::new(44).panning_sequence(48, 32, 16, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        encode_ladder("movie", &frames, &cfg).unwrap().manifest
    }

    fn title_bytes(m: &Manifest) -> usize {
        m.rungs
            .iter()
            .flat_map(|r| r.segments.iter().map(|s| s.bytes))
            .sum()
    }

    /// Relative f64 closeness for report fields whose only permitted
    /// divergence is floating-point summation order.
    fn rel_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    /// Golden pins captured from the PR 5 full-scan quantum engine.
    /// Integer fields must match *exactly*; f64 fields to 1e-9 relative
    /// (they are sums whose order the cohort engine may legally change).
    /// Any engine change that shifts a completion tick, a rebuffer
    /// count, or an edge counter breaks these loudly.
    fn assert_golden(r: &LoadReport, g: &LoadReport) {
        assert_eq!(
            (
                r.sessions,
                r.completed,
                r.ticks,
                r.rebuffer_sessions,
                r.rung_switches,
                r.departed
            ),
            (
                g.sessions,
                g.completed,
                g.ticks,
                g.rebuffer_sessions,
                g.rung_switches,
                g.departed
            ),
            "integer report fields diverged: {r:?} vs {g:?}"
        );
        for (a, b) in [
            (r.total_goodput_bits_per_tick, g.total_goodput_bits_per_tick),
            (r.mean_session_bits_per_tick, g.mean_session_bits_per_tick),
            (r.mean_startup_ticks, g.mean_startup_ticks),
            (r.rebuffer_fraction, g.rebuffer_fraction),
            (r.mean_rung, g.mean_rung),
        ] {
            assert!(
                rel_close(a, b),
                "f64 report field diverged: {a} vs {b}\n{r:?}\n{g:?}"
            );
        }
    }

    #[test]
    fn golden_vod_report_matches_the_seed_engine() {
        let m = manifest();
        let r = simulate_load(
            &m,
            &ServerConfig::default(),
            &LoadConfig {
                sessions: 700,
                ..Default::default()
            },
        );
        assert_golden(
            &r,
            &LoadReport {
                sessions: 700,
                completed: 700,
                ticks: 1084,
                total_goodput_bits_per_tick: 30107.749077490775,
                mean_session_bits_per_tick: 456.0807901306719,
                mean_startup_ticks: 52.73,
                rebuffer_sessions: 0,
                rebuffer_fraction: 0.0,
                mean_rung: 1.5,
                rung_switches: 700,
                departed: 0,
            },
        );
    }

    #[test]
    fn golden_churned_edge_report_matches_the_seed_engine() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 3,
            prewarm: false,
            cache_capacity_bytes: title_bytes(&m) / 2,
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 200,
            churn: ChurnConfig {
                churn_sessions: 150,
                mean_interarrival_ticks: 300.0,
                mean_watch_ticks: 4_000.0,
                flash_sessions: 100,
                flash_at_tick: 20_000,
                flash_ramp_ticks: 5_000,
            },
            ..Default::default()
        };
        let r = simulate_edge_load(&m, &tier, &load);
        assert_golden(
            &r.load,
            &LoadReport {
                sessions: 450,
                completed: 447,
                ticks: 48996,
                total_goodput_bits_per_tick: 427.2015674748959,
                mean_session_bits_per_tick: 756.4441274993856,
                mean_startup_ticks: 29.56222222222222,
                rebuffer_sessions: 0,
                rebuffer_fraction: 0.0,
                mean_rung: 1.4988864142538976,
                rung_switches: 450,
                departed: 3,
            },
        );
        assert_eq!(
            r.tier,
            EdgeStats {
                hits: 1780,
                misses: 12,
                coalesced: 7,
                evictions: 0,
                revalidations: 0,
                invalidations: 0,
                origin_bytes: 17484,
                served_bytes: 2616396,
            }
        );
    }

    #[test]
    fn golden_live_report_matches_the_seed_engine() {
        let m = manifest();
        let live = LiveConfig {
            dvr_window_segments: 8,
            join: JoinMode::LiveEdge,
            ..Default::default()
        };
        let r = simulate_live_load(
            &m,
            &ServerConfig::default(),
            &live,
            &LoadConfig {
                sessions: 300,
                ..Default::default()
            },
        );
        assert_golden(
            &r.load,
            &LoadReport {
                sessions: 300,
                completed: 300,
                ticks: 1316,
                total_goodput_bits_per_tick: 7869.714285714285,
                mean_session_bits_per_tick: 43.79183931778799,
                mean_startup_ticks: 314.31666666666666,
                rebuffer_sessions: 0,
                rebuffer_fraction: 0.0,
                mean_rung: 1.3704092339979013,
                rung_switches: 300,
                departed: 0,
            },
        );
        assert!(rel_close(r.live.mean_latency_ticks, 131.77334732423924));
        assert_eq!(r.live.max_latency_ticks, 448);
        assert_eq!(r.live.publish_wait_ticks, 170520);
        assert_eq!(r.live.window_skips, 0);
    }

    #[test]
    fn iterated_and_analytic_completion_agree_at_ten_million_ticks() {
        // Satellite pin for the f64 byte accounting: the per-quantum
        // iterated drain (`rem -= per_quantum`, the per-session hot
        // loop) and the fused analytic form (`rem - k * per_quantum`,
        // the cohort fast path) must agree on the completion quantum
        // even after 2.5M subtractions (10M ticks at quantum 4), where
        // accumulated rounding drift peaks.
        for (bytes, per_quantum) in [
            (10_000.0f64, 0.004f64), // 2.5M quanta exactly on paper
            (9_999.7, 0.0041),       // non-representable fractions
            (123_456.78, 0.049),
            (7.0, 3.0), // tiny transfer, coarse quanta
        ] {
            let eps = completion_eps(bytes);
            let analytic = quanta_to_complete(bytes, per_quantum, eps);
            let mut rem = bytes;
            let mut iterated = 0u64;
            while rem > eps {
                rem -= per_quantum;
                iterated += 1;
            }
            assert_eq!(
                iterated, analytic,
                "completion quantum diverged for {bytes} B at {per_quantum} B/quantum"
            );
            // The drift the epsilon must absorb stays far inside it.
            let fused = bytes - analytic as f64 * per_quantum;
            assert!(
                (rem - fused).abs() < eps / 100.0,
                "accumulated drift {} vs eps {eps}",
                (rem - fused).abs()
            );
        }
        // Degenerate guards.
        assert_eq!(quanta_to_complete(0.0, 1.0, completion_eps(1.0)), 0);
        assert_eq!(quanta_to_complete(10.0, 0.0, 1e-8), u64::MAX);
        assert_eq!(quanta_to_complete(10.0, f64::NAN, 1e-8), u64::MAX);
    }

    #[test]
    fn ten_million_tick_run_completes_deterministically() {
        // Engine-level long-run pin: a starved session draining one
        // segment over millions of quanta neither wedges on the
        // epsilon rule nor drifts between runs.
        let m = manifest();
        let server = ServerConfig {
            capacity_bytes_per_tick: 4_000.0,
            per_session_bytes_per_tick: 0.0003,
        };
        let load = LoadConfig {
            sessions: 1,
            stagger_ticks: 0,
            max_ticks: u64::MAX,
            ..Default::default()
        };
        let a = simulate_load(&m, &server, &load);
        assert_eq!(a.completed, 1, "the starved session still finishes");
        assert!(a.ticks > 10_000_000, "ran long: {}", a.ticks);
        assert_eq!(a, simulate_load(&m, &server, &load));
    }

    #[test]
    fn exhausted_churn_schedules_terminate_the_arrival_stream() {
        // A churn clock that saturates near `u64::MAX` used to leave
        // the un-scheduled arrivals counted as alive forever, spinning
        // the engine to `max_ticks`. Now the stream terminates
        // explicitly: the impossible arrivals become phantoms that
        // denominate the report but never simulate.
        let m = manifest();
        let load = LoadConfig {
            sessions: 40,
            churn: ChurnConfig {
                churn_sessions: 25,
                mean_interarrival_ticks: 1e300, // first gap saturates
                mean_watch_ticks: 100.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = simulate_load(&m, &ServerConfig::default(), &load);
        assert_eq!(r.sessions, 65, "phantoms still denominate");
        assert_eq!(r.completed, 40, "the base population completes");
        assert_eq!(r.departed, 0);
        // The engine finished at the base population's pace instead of
        // spinning out the 10M-tick ceiling.
        assert!(r.ticks < 100_000, "terminated at {}", r.ticks);
        // Deterministic, like every other config.
        assert_eq!(r, simulate_load(&m, &ServerConfig::default(), &load));

        // A flash ramp pushed off the end of time is likewise phantom,
        // not frozen.
        let flashed = LoadConfig {
            churn: ChurnConfig {
                flash_sessions: 10,
                flash_at_tick: u64::MAX,
                flash_ramp_ticks: 0,
                ..Default::default()
            },
            ..load
        };
        let r = simulate_load(&m, &ServerConfig::default(), &flashed);
        assert_eq!(r.sessions, 50, "40 base + 10 phantom flash");
        assert_eq!(r.completed, 40);
        assert!(r.ticks < 100_000);
    }

    #[test]
    fn a_lone_session_reaches_the_top_rung() {
        let m = manifest();
        let r = simulate_load(
            &m,
            &ServerConfig::default(),
            &LoadConfig {
                sessions: 1,
                stagger_ticks: 0,
                ..Default::default()
            },
        );
        assert_eq!(r.completed, 1);
        assert_eq!(r.rebuffer_sessions, 0);
        assert!(r.mean_rung > 0.5, "mean rung {}", r.mean_rung);
    }

    #[test]
    fn oversubscription_degrades_quality_then_stability() {
        let m = manifest();
        let server = ServerConfig::default();
        let base = LoadConfig::default();
        let light = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 8,
                ..base
            },
        );
        let heavy = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 2_000,
                ..base
            },
        );
        assert_eq!(light.completed, 8);
        assert!(light.rebuffer_fraction <= 0.05);
        assert!(
            heavy.mean_rung < light.mean_rung,
            "overload must push sessions down the ladder: {} vs {}",
            heavy.mean_rung,
            light.mean_rung
        );
        assert!(
            heavy.mean_session_bits_per_tick < light.mean_session_bits_per_tick,
            "per-session delivered rate must fall past the knee"
        );
        assert!(heavy.rebuffer_fraction > light.rebuffer_fraction);
    }

    #[test]
    fn thousands_of_sessions_complete_and_knee_is_found() {
        let m = manifest();
        let server = ServerConfig::default();
        let base = LoadConfig::default();
        let counts = [50, 200, 1_000, 3_000];
        let curve = capacity_curve(&m, &server, &counts, &base);
        assert_eq!(curve.len(), 4);
        assert!(curve.iter().all(|r| r.completed == r.sessions));
        let knee = capacity_knee(&curve, 0.05);
        assert!(knee.is_some(), "some level must be sustainable");
        assert!(knee.unwrap() >= 50);
        // Server goodput saturates: the biggest level cannot beat the
        // uplink.
        let cap_bits = server.capacity_bytes_per_tick * 8.0;
        assert!(curve
            .iter()
            .all(|r| r.total_goodput_bits_per_tick <= cap_bits * 1.01));
    }

    #[test]
    fn simulation_is_deterministic() {
        let m = manifest();
        let server = ServerConfig::default();
        let load = LoadConfig {
            sessions: 500,
            ..Default::default()
        };
        let a = simulate_load(&m, &server, &load);
        let b = simulate_load(&m, &server, &load);
        assert_eq!(a, b);
    }

    #[test]
    fn stagger_spreads_startup_contention() {
        let m = manifest();
        let server = ServerConfig::default();
        let burst = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 400,
                stagger_ticks: 0,
                ..Default::default()
            },
        );
        let spread = simulate_load(
            &m,
            &server,
            &LoadConfig {
                sessions: 400,
                stagger_ticks: 200_000,
                ..Default::default()
            },
        );
        assert!(
            spread.mean_startup_ticks <= burst.mean_startup_ticks,
            "arrival spreading should not worsen startup: {} vs {}",
            spread.mean_startup_ticks,
            burst.mean_startup_ticks
        );
    }

    #[test]
    fn degenerate_loads_return_well_defined_reports() {
        let m = manifest();
        // Empty session list.
        let r = simulate_load(
            &m,
            &ServerConfig::default(),
            &LoadConfig {
                sessions: 0,
                ..Default::default()
            },
        );
        assert_eq!(r, LoadReport::degenerate(0));
        assert_eq!(r.rebuffer_fraction, 0.0, "no NaN from 0/0");
        // Zero-capacity uplink: returns immediately, nothing delivered.
        let r = simulate_load(
            &m,
            &ServerConfig {
                capacity_bytes_per_tick: 0.0,
                per_session_bytes_per_tick: 100.0,
            },
            &LoadConfig::default(),
        );
        assert_eq!(r.completed, 0);
        assert_eq!(r.total_goodput_bits_per_tick, 0.0);
        // NaN capacity is degenerate, not a hang.
        let r = simulate_load(
            &m,
            &ServerConfig {
                capacity_bytes_per_tick: f64::NAN,
                per_session_bytes_per_tick: 100.0,
            },
            &LoadConfig::default(),
        );
        assert_eq!(r.completed, 0);
        // Knee over an empty curve.
        assert_eq!(capacity_knee(&[], 0.05), None);
        // Zero quantum is treated as 1, not a panic or an infinite loop.
        let r = simulate_load(
            &m,
            &ServerConfig::default(),
            &LoadConfig {
                sessions: 2,
                tick_quantum: 0,
                ..Default::default()
            },
        );
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn warm_edges_multiply_the_knee() {
        let m = manifest();
        let base = LoadConfig::default();
        let counts = [200usize, 1_000, 2_000, 4_000];
        let single = capacity_curve(&m, &ServerConfig::default(), &counts, &base);
        let single_knee = capacity_knee(&single, 0.05).expect("single origin has a knee");
        let tier = EdgeTierConfig {
            edges: 4,
            cache_capacity_bytes: usize::MAX,
            prewarm: true,
            ..Default::default()
        };
        let edge = edge_capacity_curve(&m, &tier, &counts, &base);
        let edge_knee = edge_capacity_knee(&edge, 0.05).expect("edge tier has a knee");
        assert!(
            edge_knee >= 2 * single_knee,
            "4 warm edges must at least double the knee: {edge_knee} vs {single_knee}"
        );
        // Warm edges never touch the origin.
        assert!(edge.iter().all(|r| r.tier.origin_bytes == 0));
        assert!(edge.iter().all(|r| (r.hit_rate - 1.0).abs() < 1e-12));
    }

    #[test]
    fn one_warm_edge_matches_the_single_origin_exactly() {
        // The single-origin simulator is the 1-edge special case of the
        // same engine; the session-side numbers must agree bit-exactly.
        let m = manifest();
        let load = LoadConfig {
            sessions: 700,
            ..Default::default()
        };
        let single = simulate_load(&m, &ServerConfig::default(), &load);
        let tier = EdgeTierConfig {
            edges: 1,
            cache_capacity_bytes: usize::MAX,
            edge_capacity_bytes_per_tick: 4_000.0,
            per_session_bytes_per_tick: 100.0,
            prewarm: true,
            ..Default::default()
        };
        let edge = simulate_edge_load(&m, &tier, &load);
        assert_eq!(edge.load, single);
    }

    #[test]
    fn cold_edges_fill_once_and_then_offload() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 2,
            cache_capacity_bytes: usize::MAX,
            prewarm: false,
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 300,
            ..Default::default()
        };
        let r = simulate_edge_load(&m, &tier, &load);
        assert_eq!(r.load.completed, 300);
        assert!(r.tier.misses > 0, "cold caches must miss");
        assert!(
            r.tier.hits > r.tier.misses,
            "reuse must dominate: {} hits vs {} misses",
            r.tier.hits,
            r.tier.misses
        );
        // Every distinct object crosses the origin link at most a
        // handful of times (refills after eviction are impossible with
        // unbounded caches, so it is exactly once per edge per object).
        let objects = (m.rungs.len() * m.segment_count()) as u64;
        assert!(r.tier.misses <= objects * tier.edges as u64);
        assert!(r.origin_offload > 0.5, "offload {}", r.origin_offload);
        assert_eq!(
            r.per_edge.iter().map(|e| e.sessions).sum::<usize>(),
            load.sessions
        );
    }

    #[test]
    fn coalescing_collapses_concurrent_misses() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 1,
            prewarm: false,
            ..Default::default()
        };
        // A burst of simultaneous arrivals all wanting segment (0, 0).
        let load = LoadConfig {
            sessions: 200,
            stagger_ticks: 0,
            ..Default::default()
        };
        let r = simulate_edge_load(&m, &tier, &load);
        assert!(
            r.tier.coalesced >= 199,
            "the burst must coalesce onto one fill: {}",
            r.tier.coalesced
        );
        assert_eq!(r.load.completed, 200);
    }

    #[test]
    fn tiny_caches_thrash_but_still_serve() {
        let m = manifest();
        let small = title_bytes(&m) / 8;
        let tier = EdgeTierConfig {
            edges: 2,
            cache_capacity_bytes: small,
            prewarm: false,
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 150,
            ..Default::default()
        };
        let r = simulate_edge_load(&m, &tier, &load);
        assert_eq!(r.load.completed, 150, "thrashing must not wedge sessions");
        assert!(r.tier.evictions > 0, "a small cache must evict");
        let big = simulate_edge_load(
            &m,
            &EdgeTierConfig {
                cache_capacity_bytes: usize::MAX,
                ..tier
            },
            &load,
        );
        assert!(
            big.hit_rate >= r.hit_rate,
            "more cache cannot hit less: {} vs {}",
            big.hit_rate,
            r.hit_rate
        );
    }

    #[test]
    fn origin_outage_with_cold_caches_terminates_cleanly() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 2,
            prewarm: false,
            origin_down_after: Some(0),
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 50,
            ..Default::default()
        };
        // Nothing can ever be served; the engine must detect stasis and
        // return instead of spinning to max_ticks.
        let r = simulate_edge_load(&m, &tier, &load);
        assert_eq!(r.load.completed, 0);
        assert!(r.load.ticks < load.max_ticks);
    }

    #[test]
    fn origin_outage_with_warm_caches_is_invisible() {
        let m = manifest();
        let load = LoadConfig {
            sessions: 400,
            ..Default::default()
        };
        let up = simulate_edge_load(
            &m,
            &EdgeTierConfig {
                prewarm: true,
                origin_down_after: None,
                ..Default::default()
            },
            &load,
        );
        let down = simulate_edge_load(
            &m,
            &EdgeTierConfig {
                prewarm: true,
                origin_down_after: Some(0),
                ..Default::default()
            },
            &load,
        );
        assert_eq!(up, down, "warm edges never need the origin");
        assert_eq!(down.load.completed, 400);
    }

    #[test]
    fn hash_sharding_completes_and_spreads() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 4,
            sharding: Sharding::Hash,
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 800,
            ..Default::default()
        };
        let r = simulate_edge_load(&m, &tier, &load);
        assert_eq!(r.load.completed, 800);
        assert!(
            r.per_edge.iter().all(|e| e.sessions > 100),
            "hash sharding should not starve an edge: {:?}",
            r.per_edge.iter().map(|e| e.sessions).collect::<Vec<_>>()
        );
    }

    #[test]
    fn edge_simulation_is_deterministic() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 3,
            prewarm: false,
            cache_capacity_bytes: title_bytes(&m) / 2,
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 500,
            ..Default::default()
        };
        let a = simulate_edge_load(&m, &tier, &load);
        let b = simulate_edge_load(&m, &tier, &load);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_churn_infinite_dvr_live_equals_vod_exactly() {
        // The acceptance pin: with an infinite DVR window, a head start
        // covering the whole title, DvrStart joins, and zero churn,
        // every live gate is vacuous and the live simulator must
        // reproduce the VOD report *bit-identically*.
        let m = manifest();
        let server = ServerConfig::default();
        let load = LoadConfig {
            sessions: 700,
            ..Default::default()
        };
        let live = LiveConfig {
            ticks_per_segment: 0, // natural pace (irrelevant here)
            dvr_window_segments: u64::MAX,
            head_start_segments: m.segment_count() as u64 - 1,
            join: JoinMode::DvrStart,
        };
        let vod = simulate_load(&m, &server, &load);
        let live_run = simulate_live_load(&m, &server, &live, &load);
        assert_eq!(
            live_run.load, vod,
            "vacuous live gates must not perturb VOD"
        );
        assert_eq!(live_run.live.publish_wait_ticks, 0);
        assert_eq!(live_run.live.window_skips, 0);
    }

    #[test]
    fn neutral_churn_knobs_are_the_static_population() {
        // Non-zero means with zero churn/flash sessions draw nothing
        // from the RNG: the static population, bit-identical.
        let m = manifest();
        let tier = EdgeTierConfig::default();
        let base = LoadConfig {
            sessions: 400,
            ..Default::default()
        };
        let with_knobs = LoadConfig {
            churn: ChurnConfig {
                churn_sessions: 0,
                mean_interarrival_ticks: 123.0,
                mean_watch_ticks: 55.0,
                flash_sessions: 0,
                flash_at_tick: 9,
                flash_ramp_ticks: 7,
            },
            ..base
        };
        assert_eq!(
            simulate_edge_load(&m, &tier, &base),
            simulate_edge_load(&m, &tier, &with_knobs)
        );
    }

    #[test]
    fn churn_arrivals_and_departures_are_deterministic() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 3,
            prewarm: false,
            cache_capacity_bytes: title_bytes(&m) / 2,
            ..Default::default()
        };
        let load = LoadConfig {
            sessions: 200,
            churn: ChurnConfig {
                churn_sessions: 150,
                mean_interarrival_ticks: 300.0,
                mean_watch_ticks: 4_000.0,
                flash_sessions: 100,
                flash_at_tick: 20_000,
                flash_ramp_ticks: 5_000,
            },
            ..Default::default()
        };
        let a = simulate_edge_load(&m, &tier, &load);
        let b = simulate_edge_load(&m, &tier, &load);
        assert_eq!(a, b, "churn must be seed-deterministic");
        // The population is the base plus every churn and flash extra.
        assert_eq!(a.load.sessions, 200 + 150 + 100);
        // Short watch times force early departures.
        assert!(a.load.departed > 0, "some churn viewers must leave early");
        assert_eq!(
            a.load.completed + a.load.departed,
            a.load.sessions,
            "every session either finishes or departs (none wedge)"
        );
        // A different seed produces a different process.
        let other = simulate_edge_load(&m, &tier, &LoadConfig { seed: 99, ..load });
        assert_ne!(a, other);
    }

    #[test]
    fn flash_crowd_pushes_a_single_origin_past_its_knee() {
        let m = manifest();
        let server = ServerConfig::default();
        let calm = LoadConfig {
            sessions: 300,
            stagger_ticks: 10_000,
            ..Default::default()
        };
        let flashed = LoadConfig {
            churn: ChurnConfig {
                flash_sessions: 3_000,
                flash_at_tick: 20_000,
                flash_ramp_ticks: 1_000,
                ..Default::default()
            },
            ..calm
        };
        let before = simulate_load(&m, &server, &calm);
        let after = simulate_load(&m, &server, &flashed);
        assert!(before.rebuffer_fraction <= 0.05, "baseline is comfortable");
        assert!(
            after.rebuffer_fraction > 0.05,
            "a 10x flash crowd must drive one origin past its knee: {}",
            after.rebuffer_fraction
        );
    }

    #[test]
    fn live_edge_sessions_pace_with_the_publish_clock() {
        let m = manifest();
        let live = LiveConfig {
            dvr_window_segments: u64::MAX,
            ..Default::default() // LiveEdge join, fresh channel
        };
        let load = LoadConfig {
            sessions: 20,
            stagger_ticks: 200,
            ..Default::default()
        };
        let r = simulate_live_load(&m, &ServerConfig::default(), &live, &load);
        assert_eq!(r.load.completed, 20, "every live viewer reaches the end");
        assert!(
            r.live.publish_wait_ticks > 0,
            "live-edge viewers must block on unpublished segments"
        );
        // Fetch-after-publish keeps latency within a couple of segment
        // durations (tps = 4 frames x 100 ticks = 400 here).
        assert!(
            r.live.mean_latency_ticks < 800.0,
            "live latency ran away: {}",
            r.live.mean_latency_ticks
        );
        assert!(
            r.live.window_skips == 0,
            "nothing expires with infinite DVR"
        );
    }

    #[test]
    fn shallow_dvr_window_skips_slow_live_sessions_forward() {
        let m = manifest();
        // Viewers slower than the publish pace: segments expire under
        // them and they must skip forward instead of wedging.
        let live = LiveConfig {
            ticks_per_segment: 8,
            dvr_window_segments: 1,
            head_start_segments: 0,
            join: JoinMode::DvrStart,
        };
        let load = LoadConfig {
            sessions: 30,
            stagger_ticks: 0,
            ..Default::default()
        };
        let r = simulate_live_load(&m, &ServerConfig::default(), &live, &load);
        assert!(
            r.live.window_skips > 0,
            "a 1-deep window at a hot pace must expire segments"
        );
        assert_eq!(
            r.load.completed, 30,
            "skipping forward must still reach the live end"
        );
        assert!(r.load.ticks < load.max_ticks);
    }

    #[test]
    fn live_edge_miss_storm_coalesces_into_one_fill_per_segment() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 1,
            prewarm: false,
            ..Default::default()
        };
        let live = LiveConfig {
            dvr_window_segments: u64::MAX,
            ..Default::default()
        };
        // A burst of simultaneous live-edge joins: every new publish is
        // a miss for everyone at once — the thundering-herd case.
        let load = LoadConfig {
            sessions: 300,
            stagger_ticks: 0,
            ..Default::default()
        };
        let r = simulate_live_edge_load(&m, &tier, &live, &load);
        assert_eq!(r.edge.load.completed, 300);
        assert!(
            r.edge.tier.misses <= (m.rungs.len() * m.segment_count()) as u64,
            "each (rung, segment) fills at most once: {} misses",
            r.edge.tier.misses
        );
        assert!(
            r.edge.tier.coalesced > 0,
            "the storm must coalesce onto in-flight fills"
        );
    }

    #[test]
    fn live_dvr_expiry_invalidates_edge_caches() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 2,
            prewarm: false,
            ..Default::default()
        };
        let live = LiveConfig {
            ticks_per_segment: 400,
            dvr_window_segments: 1,
            head_start_segments: 0,
            join: JoinMode::DvrStart,
        };
        let load = LoadConfig {
            sessions: 60,
            stagger_ticks: 0,
            ..Default::default()
        };
        let r = simulate_live_edge_load(&m, &tier, &live, &load);
        assert!(
            r.edge.tier.invalidations > 0,
            "window expiry must purge cached segments"
        );
        assert_eq!(
            r.edge.tier.evictions, 0,
            "purges are not capacity evictions"
        );
    }

    #[test]
    fn live_simulation_is_deterministic() {
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 2,
            prewarm: false,
            ..Default::default()
        };
        let live = LiveConfig::default();
        let load = LoadConfig {
            sessions: 250,
            churn: ChurnConfig {
                churn_sessions: 50,
                mean_interarrival_ticks: 200.0,
                mean_watch_ticks: 3_000.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = simulate_live_edge_load(&m, &tier, &live, &load);
        let b = simulate_live_edge_load(&m, &tier, &live, &load);
        assert_eq!(a, b);
    }

    #[test]
    fn knee_is_invariant_under_curve_permutation() {
        // The knee is a max over a filtered set: the order sessions
        // (and their reports) arrive in must not matter.
        let m = manifest();
        let tier = EdgeTierConfig::default();
        let counts = [50usize, 400, 1_200, 2_400];
        let base = LoadConfig::default();
        let mut curve = edge_capacity_curve(&m, &tier, &counts, &base);
        let knee = edge_capacity_knee(&curve, 0.05);
        assert!(knee.is_some());
        curve.reverse();
        assert_eq!(edge_capacity_knee(&curve, 0.05), knee);
        curve.rotate_left(1);
        assert_eq!(edge_capacity_knee(&curve, 0.05), knee);
    }

    #[test]
    fn bisecting_knee_equals_the_curve_scan_on_capacity_sweeps() {
        // The bisect probes O(log n) counts; on the monotone sweeps the
        // BENCH tables use it must land on exactly the curve-scan knee
        // — for the single-origin, edge-tier, and live shapes alike.
        let m = manifest();
        let base = LoadConfig::default();
        let counts = [50usize, 200, 400, 800, 1_600, 3_200];
        let server = ServerConfig::default();
        let scan = capacity_knee(&capacity_curve(&m, &server, &counts, &base), 0.05);
        assert!(scan.is_some());
        assert_eq!(
            capacity_knee_bisect(&m, &server, &counts, &base, 0.05),
            scan
        );

        let tier = EdgeTierConfig::default();
        let scan = edge_capacity_knee(&edge_capacity_curve(&m, &tier, &counts, &base), 0.05);
        assert!(scan.is_some());
        assert_eq!(
            edge_capacity_knee_bisect(&m, &tier, &counts, &base, 0.05),
            scan
        );

        let live = LiveConfig::default();
        let scan = live_edge_capacity_knee(
            &live_edge_capacity_curve(&m, &tier, &live, &counts, &base),
            0.05,
        );
        assert_eq!(
            live_edge_capacity_knee_bisect(&m, &tier, &live, &counts, &base, 0.05),
            scan
        );
    }

    #[test]
    fn bisecting_knee_guards_degenerate_count_inputs() {
        // Unsorted and duplicated population points (hand-edited sweep
        // configs) must give the same knee as the clean sweep; empty
        // and all-stalling sweeps answer `None`.
        let m = manifest();
        let base = LoadConfig::default();
        let tier = EdgeTierConfig::default();
        let clean = edge_capacity_knee_bisect(&m, &tier, &[200, 800, 3_200], &base, 0.05);
        assert!(clean.is_some());
        let messy = [3_200usize, 200, 800, 200, 3_200, 800, 800];
        assert_eq!(
            edge_capacity_knee_bisect(&m, &tier, &messy, &base, 0.05),
            clean
        );
        assert_eq!(edge_capacity_knee_bisect(&m, &tier, &[], &base, 0.05), None);
        // Even the smallest count stalls on a starved tier.
        let starved = EdgeTierConfig {
            edge_capacity_bytes_per_tick: 1.0,
            ..Default::default()
        };
        assert_eq!(
            edge_capacity_knee_bisect(&m, &starved, &[400, 800], &base, 0.05),
            None
        );
    }

    #[test]
    fn degenerate_live_configs_return_well_defined_reports() {
        let m = manifest();
        let load = LoadConfig::default();
        // A zero DVR window can never publish anything fetchable.
        let r = simulate_live_load(
            &m,
            &ServerConfig::default(),
            &LiveConfig {
                dvr_window_segments: 0,
                ..Default::default()
            },
            &load,
        );
        assert_eq!(r.load, LoadReport::degenerate(load.population()));
        assert_eq!(r.live, LiveStats::default());
        assert_eq!(live_edge_capacity_knee(&[], 0.05), None);
    }

    #[test]
    fn degenerate_reports_denominate_on_the_whole_population() {
        // A degenerate run must report the same population a healthy
        // run would have created (base + churn + flash), so capacity
        // curves stay comparable level to level.
        let m = manifest();
        let load = LoadConfig {
            sessions: 3,
            churn: ChurnConfig {
                churn_sessions: 5,
                flash_sessions: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = simulate_live_load(
            &m,
            &ServerConfig {
                capacity_bytes_per_tick: f64::NAN,
                per_session_bytes_per_tick: 100.0,
            },
            &LiveConfig::default(),
            &load,
        );
        assert_eq!(r.load.sessions, 15, "3 base + 5 churn + 7 flash");
        assert_eq!(r.load.completed, 0);
    }

    #[test]
    fn degenerate_edge_tiers_return_well_defined_reports() {
        let m = manifest();
        let load = LoadConfig::default();
        let zero_edges = simulate_edge_load(
            &m,
            &EdgeTierConfig {
                edges: 0,
                ..Default::default()
            },
            &load,
        );
        assert_eq!(zero_edges.load, LoadReport::degenerate(load.population()));
        assert!(zero_edges.per_edge.is_empty());
        assert_eq!(edge_capacity_knee(&[], 0.05), None);
    }

    #[test]
    fn crashing_every_edge_forever_terminates_cleanly_degraded() {
        // The degenerate fault plan: all edges die early and never
        // restart. Nothing can ever move a byte again, so the run must
        // terminate with a clean degraded report — not trip the stasis
        // detector into a panic, and not spin to `max_ticks`.
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 2,
            ..Default::default()
        };
        let plan = FaultPlan::new(9)
            .crash_edge(0, 200, None)
            .crash_edge(1, 200, None);
        let load = LoadConfig {
            sessions: 300,
            ..Default::default()
        };
        let r = simulate_edge_load_faulted(&m, &tier, &plan, &load);
        assert_eq!(r.resilience.edge_crashes, 2);
        assert_eq!(r.resilience.edge_restarts, 0);
        assert_eq!(r.resilience.mean_restore_ticks, 0.0);
        assert!(
            r.edge.load.completed < r.edge.load.sessions,
            "a tier with no edges left cannot complete everyone"
        );
        assert!(
            r.edge.load.ticks < load.max_ticks / 100,
            "the dead tier must terminate promptly, not spin: {}",
            r.edge.load.ticks
        );
    }

    #[test]
    fn crash_and_restart_fail_over_and_fail_back() {
        use crate::fault::RestartMode;

        // One of two edges dies mid-run and comes back cold: sessions
        // must fail over (re-home), the restart must land in the MTTR
        // ledger, and the cold cache must trigger re-warm fills. The
        // run still completes everyone — that is what failover buys.
        let m = manifest();
        let tier = EdgeTierConfig {
            edges: 2,
            prewarm: true,
            ..Default::default()
        };
        let plan = FaultPlan::new(5).crash_edge(0, 300, Some((900, RestartMode::Cold)));
        let load = LoadConfig {
            sessions: 400,
            ..Default::default()
        };
        let r = simulate_edge_load_faulted(&m, &tier, &plan, &load);
        assert_eq!(r.resilience.edge_crashes, 1);
        assert_eq!(r.resilience.edge_restarts, 1);
        assert_eq!(r.resilience.mean_restore_ticks, 600.0);
        assert!(
            r.resilience.sessions_rehomed > 0,
            "the crashed edge's sessions must move to the survivor"
        );
        assert_eq!(
            r.edge.load.completed, r.edge.load.sessions,
            "failover must carry every session through the crash"
        );
    }
}
