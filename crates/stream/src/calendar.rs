//! The event-calendar + cohort fluid engine behind `serve`'s
//! `simulate_*` entry points.
//!
//! The retired quantum engine advanced **every** arrived session every
//! quantum — O(ticks × population) — which capped capacity sweeps at a
//! few thousand viewers. This engine spends per-quantum work on
//! *cohorts* instead:
//!
//! * **Cohorts.** Sessions whose entire dynamic state is value-identical
//!   are one counted class. The fluid model has no per-session
//!   randomness after the arrival draw: two viewers arriving on the
//!   same tick, sharded onto the same edge, run bit-identical dynamics
//!   forever. A cohort executes each per-quantum f64 operation *once*
//!   (the same operation sequence the per-session engine would run for
//!   each member), so its trajectory — every completion tick, rebuffer,
//!   rung switch — is exactly the per-session trajectory, and the edge
//!   counters advance by counted arithmetic ([`SimEdge::request_n`]).
//!   A flash crowd of 100k viewers landing on one tick is one actor.
//! * **The calendar.** A binary-heap [`EventCalendar`] keyed on each
//!   cohort's next discrete event (arrival, churn departure) drives the
//!   clock: quanta where no cohort is active fast-forward straight to
//!   the next event boundary instead of ticking through the gap, and
//!   departures/arrivals touch only the cohort they name.
//! * **Merge/split bookkeeping.** Cohorts whose states converge (same
//!   edge, equal state) are merged into one class whose member groups
//!   keep per-arrival accounting (start tick, departure tick, startup
//!   latency); a scheduled churn departure *splits* its member group
//!   back out of the class at the departure quantum, folding it into
//!   the report while the rest of the class keeps simulating.
//! * **Fault replay.** A resolved [`crate::fault::FaultPlan`] schedules
//!   its actions on the same event heap (sorting before same-tick
//!   arrivals), so crashes, restarts, origin flaps, and degradation
//!   spans replay deterministically at any scale. Classes whose home
//!   edge crashes re-home across the failover ring to survivors and
//!   fail back on restart; rebuffers that begin under fault pressure
//!   pin the class to the lowest rung (graceful degradation) and are
//!   tallied into [`ResilienceStats`]. A run without a plan never
//!   touches any of this — plan-free reports are bit-identical to
//!   pre-fault builds.
//!
//! Exactness contract, pinned by the golden tests in `serve` and the
//! oracle-equivalence property tests below: for unbounded edge caches
//! (every `BENCH` knee sweep), reports are identical to the per-session
//! quantum oracle — integer fields bit-exact, f64 fields to 1e-9
//! (summation order). Bounded caches under *eviction* are the one
//! documented divergence: a cohort touches the LRU once per class
//! rather than once per member, so recency interleaving — and hence
//! eviction victims — can legally differ; reports remain deterministic
//! and within the behavioural tolerances the bounded-cache tests
//! assert.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use signal::rng::splitmix64;

use crate::catalog::ZipfSampler;
use crate::edge::HashRing;
use crate::fault::{FaultAction, ResilienceStats};
use crate::ladder::Manifest;
use crate::serve::{
    build_edges, build_ring, build_schedule, completion_eps, join_point, shard_edge, title_for,
    LiveStats, LoadConfig, LoadReport, Req, SimEdge, TierParams, RING_VNODES, SHIELD_KEY_SALT,
    SHIELD_RING_SALT,
};
use crate::session::AbrController;
use crate::shield::{
    admit_insert, build_shields, obj_key_hash, shield_home, Admission, ObjKey, SimShield,
};

/// Cheap deterministic hasher for the cohort-formation index: the key
/// is two machine words, and formation does one lookup per *session*
/// (the only O(population) hot path left), so SipHash is pure
/// overhead. Determinism does not depend on the hash — cohort order is
/// schedule order — this is wall-clock only.
#[derive(Default)]
struct SplitMixHasher(u64);

impl Hasher for SplitMixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type CohortIndex = HashMap<(u64, usize, u32), u32, BuildHasherDefault<SplitMixHasher>>;

/// How often the engine scans active cohorts for merge candidates.
/// Merging is pure bookkeeping — it never changes report values (the
/// merged class runs the identical operation sequence both classes
/// would have run separately) — so the cadence only trades scan cost
/// against how quickly converged classes collapse.
const MERGE_EVERY: u64 = 16;

/// The dynamic state every member of a cohort shares, bit for bit.
/// This is the per-session engine's `SimSession` minus the per-member
/// identity fields (`start_tick`, `depart_at`, `startup_ticks`), which
/// live in [`MemberGroup`]s. Two cohorts may merge exactly when these
/// compare equal (and they sit on the same edge): equality here means
/// the members are indistinguishable to every future quantum.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CohortState {
    pub(crate) abr: AbrController,
    pub(crate) seg: usize,
    pub(crate) rung: usize,
    pub(crate) remaining_bytes: f64,
    pub(crate) fetch_start: u64,
    pub(crate) buffer_ticks: f64,
    pub(crate) fetched: usize,
    pub(crate) started: bool,
    pub(crate) startup_after: usize,
    pub(crate) waiting: bool,
    pub(crate) pending_request: bool,
    pub(crate) playing: bool,
    pub(crate) in_rebuffer: bool,
    pub(crate) rebuffer_events: u32,
    pub(crate) rung_switches: u32,
    pub(crate) rung_sum: u64,
    pub(crate) delivered_bits: u64,
    pub(crate) latency_sum: u64,
    pub(crate) latency_max: u64,
    /// Rebuffer events that *began* while fault pressure was active.
    /// Nonzero is sticky graceful degradation: every later rung pick
    /// returns the lowest rung (keep playing over keep quality). Always
    /// zero on a plan-free run, so the plan-free trajectory is
    /// untouched.
    pub(crate) fault_rebuffers: u32,
    /// Stalled ticks accrued while fault pressure was active.
    pub(crate) fault_rebuffer_ticks: u64,
}

/// Per-arrival accounting inside a cohort: `count` sessions that
/// arrived at `start_tick`, depart (if churned) at `depart_at`, and —
/// once the cohort starts playing — observed `startup_ticks` of
/// startup delay. Groups are what a merge carries over and what a
/// departure splits back out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MemberGroup {
    pub(crate) start_tick: u64,
    pub(crate) depart_at: Option<u64>,
    pub(crate) count: u64,
    pub(crate) startup_ticks: u64,
}

/// One counted class of identical sessions.
#[derive(Debug, Clone)]
pub(crate) struct Cohort {
    /// The edge currently serving this class. Equal to `home_edge`
    /// except while failover has the class re-homed on a survivor.
    pub(crate) edge: usize,
    /// The edge the shard function placed this class on — where it
    /// fails *back* to once a crashed home restarts.
    pub(crate) home_edge: usize,
    /// The catalog popularity rank every member watches — part of the
    /// cohort identity (sessions on different titles can never share a
    /// trajectory). Always `0` on a single-title run.
    pub(crate) title: u32,
    /// Deterministic failover key on the consistent-hash ring (from the
    /// fault plan's seed). `0` on plan-free runs, where it is never
    /// routed — and therefore never blocks a merge.
    pub(crate) ring_key: u64,
    pub(crate) members: Vec<MemberGroup>,
    pub(crate) state: CohortState,
    /// Cached member count (`members` group counts summed) — read every
    /// quantum on the downlink-share pass, maintained on formation,
    /// departure splits, and merges.
    pub(crate) n: u64,
    /// Every member folded into the report (completed, departed, or
    /// merged away) — the engine never touches this cohort again.
    pub(crate) done: bool,
}

impl Cohort {
    pub(crate) fn count(&self) -> u64 {
        debug_assert_eq!(self.n, self.members.iter().map(|g| g.count).sum::<u64>());
        self.n
    }
}

/// Discrete per-cohort events the calendar orders. Fault actions sort
/// first (a crash at tick t is visible to a tick-t arrival), then
/// arrivals before departures on the same tick, mirroring the quantum
/// engine's arrivals-then-departures loop top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// A [`FaultAction`] falls due; the payload is an index into the
    /// resolved action list, not a cohort id.
    Fault,
    Arrive,
    Depart,
}

/// The binary-heap event calendar: a min-heap of `(tick, kind, cohort)`
/// so the engine pops exactly the events due by the current quantum and
/// can fast-forward an idle clock to the next event boundary.
#[derive(Debug, Default)]
pub(crate) struct EventCalendar {
    heap: BinaryHeap<Reverse<(u64, EventKind, u32)>>,
}

impl EventCalendar {
    pub(crate) fn push(&mut self, tick: u64, kind: EventKind, cohort: u32) {
        self.heap.push(Reverse((tick, kind, cohort)));
    }

    /// The earliest scheduled tick, if any event remains.
    pub(crate) fn next_tick(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops the next event if it is due at or before `now`.
    pub(crate) fn pop_due(&mut self, now: u64) -> Option<(u64, EventKind, u32)> {
        if self.next_tick()? > now {
            return None;
        }
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Whether any *future* departure still targets a live cohort
    /// (due events were popped already), for the stasis detector.
    fn departure_pending(&self, cohorts: &[Cohort], alias: &[u32]) -> bool {
        self.heap.iter().any(|&Reverse((_, kind, cid))| {
            kind == EventKind::Depart && !cohorts[resolve(alias, cid) as usize].done
        })
    }

    /// Whether any fault action is still scheduled — a pending restart
    /// or recovery can unfreeze a run the stasis detector would
    /// otherwise declare dead.
    fn fault_pending(&self) -> bool {
        self.heap
            .iter()
            .any(|&Reverse((_, kind, _))| kind == EventKind::Fault)
    }
}

/// Follows merge redirections: events scheduled against a cohort that
/// later merged into another must land on the surviving class.
fn resolve(alias: &[u32], mut cid: u32) -> u32 {
    while alias[cid as usize] != cid {
        cid = alias[cid as usize];
    }
    cid
}

/// The first quantum boundary at or past `target`, starting from the
/// boundary `now` — where the oracle's q-at-a-time idle ticking would
/// land, computed in one jump (saturating for `u64::MAX`-adjacent
/// schedules).
fn quantized_jump(now: u64, target: u64, q: u64) -> u64 {
    now.saturating_add((target - now).div_ceil(q).saturating_mul(q))
}

/// The terminal-fold accumulator: cohorts fold member groups in here
/// the quantum they finish (and survivors fold at the end), replacing
/// the oracle's materialised session vector. Integer ledgers are exact
/// counted arithmetic; the two genuinely floating-point sums
/// (`rate_sum`, `startup_sum`) are the only report inputs whose
/// summation order differs from the oracle's per-session fold — and
/// `startup_sum` stays exact regardless because it only ever adds
/// integers below 2^53.
#[derive(Debug, Default)]
struct Acc {
    completed: u64,
    departed: u64,
    total_bits: u64,
    rate_sum: f64,
    started: u64,
    startup_sum: f64,
    rebuffer_sessions: u64,
    fetched: u64,
    rung_sum: u64,
    rung_switches: u64,
    latency_sum: u64,
    latency_max: u64,
    max_done: Option<u64>,
    fault_rebuffer_sessions: u64,
    fault_rebuffer_ticks: u64,
}

impl Acc {
    /// Folds one member group of a cohort in state `s`: `done_at` is
    /// the group's finish tick (`None` for a survivor at engine end),
    /// `completed` whether it reached the end of the title, `now` the
    /// engine clock used for unfinished lifetimes — all exactly the
    /// oracle's `finish()` per-session arithmetic, multiplied by count.
    fn fold(
        &mut self,
        s: &CohortState,
        g: &MemberGroup,
        done_at: Option<u64>,
        completed: bool,
        now: u64,
    ) {
        if completed {
            self.completed += g.count;
        } else if done_at.is_some() {
            self.departed += g.count;
        }
        if let Some(d) = done_at {
            self.max_done = Some(self.max_done.map_or(d, |m| m.max(d)));
        }
        self.total_bits += s.delivered_bits * g.count;
        let end = done_at.unwrap_or(now).max(g.start_tick + 1);
        self.rate_sum += g.count as f64 * (s.delivered_bits as f64 / (end - g.start_tick) as f64);
        if s.playing {
            self.started += g.count;
            self.startup_sum += (g.startup_ticks * g.count) as f64;
        }
        if s.rebuffer_events > 0 {
            self.rebuffer_sessions += g.count;
        }
        self.fetched += s.fetched as u64 * g.count;
        self.rung_sum += s.rung_sum * g.count;
        self.rung_switches += u64::from(s.rung_switches) * g.count;
        self.latency_sum += s.latency_sum * g.count;
        self.latency_max = self.latency_max.max(s.latency_max);
        if s.fault_rebuffers > 0 {
            self.fault_rebuffer_sessions += g.count;
        }
        self.fault_rebuffer_ticks += s.fault_rebuffer_ticks * g.count;
    }

    fn report(&self, n_sessions: usize, now: u64) -> LoadReport {
        let end_tick = self.max_done.unwrap_or(now).max(1);
        let mean_startup = if self.started == 0 {
            0.0
        } else {
            self.startup_sum / self.started as f64
        };
        LoadReport {
            sessions: n_sessions,
            completed: self.completed as usize,
            ticks: end_tick,
            total_goodput_bits_per_tick: self.total_bits as f64 / end_tick as f64,
            mean_session_bits_per_tick: self.rate_sum / n_sessions.max(1) as f64,
            mean_startup_ticks: mean_startup,
            rebuffer_sessions: self.rebuffer_sessions as usize,
            rebuffer_fraction: self.rebuffer_sessions as f64 / n_sessions.max(1) as f64,
            mean_rung: self.rung_sum as f64 / self.fetched.max(1) as f64,
            rung_switches: self.rung_switches,
            departed: self.departed as usize,
        }
    }
}

/// What one cohort run hands back to the `serve` entry points.
pub(crate) struct CohortRun {
    pub(crate) report: LoadReport,
    pub(crate) edges: Vec<SimEdge>,
    /// The shield tier's caches — empty in a flat topology.
    pub(crate) shields: Vec<SimShield>,
    pub(crate) live: LiveStats,
    /// All zero on a plan-free run.
    pub(crate) resilience: ResilienceStats,
}

/// Groups the arrival/departure schedule into cohorts keyed on
/// `(start_tick, edge, title)` — the identity that fixes a session's
/// entire deterministic trajectory — with member groups split by
/// departure tick. Returns the cohorts in first-arrival order
/// (deterministic: derived from schedule order, never map iteration).
#[allow(clippy::too_many_arguments)]
fn form_cohorts(
    schedule: &[(u64, Option<u64>)],
    seg_counts: &[usize],
    load: &LoadConfig,
    p: &TierParams,
    edges: &mut [SimEdge],
    ring: Option<&HashRing>,
    sampler: Option<&ZipfSampler>,
) -> Vec<Cohort> {
    let fault_seed = p.faults.as_ref().map(|f| f.seed);
    let mut cohorts: Vec<Cohort> = Vec::new();
    let mut index = CohortIndex::with_capacity_and_hasher(1024, BuildHasherDefault::default());
    for (i, &(start_tick, depart_at)) in schedule.iter().enumerate() {
        let edge = shard_edge(load, p, i, ring);
        let title = title_for(load, sampler, i);
        edges[edge].assigned += 1;
        let cid = *index.entry((start_tick, edge, title)).or_insert_with(|| {
            let (join_seq, startup_after) =
                join_point(p, load, start_tick, seg_counts[title as usize]);
            cohorts.push(Cohort {
                edge,
                home_edge: edge,
                title,
                // The class fails over as one unit: its key mixes the
                // plan seed with the cohort identity, so different
                // plans spread a crashed edge's classes differently.
                // Title 0 hashes exactly like the pre-catalog key, so
                // single-title fault runs keep their golden layouts.
                ring_key: fault_seed.map_or(0, |s| {
                    let base = splitmix64(splitmix64(s ^ start_tick) ^ edge as u64);
                    if title != 0 {
                        splitmix64(base ^ u64::from(title))
                    } else {
                        base
                    }
                }),
                n: 0,
                members: Vec::new(),
                state: CohortState {
                    abr: AbrController::new(load.ewma_alpha, load.safety),
                    seg: join_seq,
                    rung: 0,
                    remaining_bytes: 0.0,
                    fetch_start: start_tick,
                    buffer_ticks: 0.0,
                    fetched: 0,
                    started: false,
                    startup_after,
                    waiting: false,
                    pending_request: false,
                    playing: false,
                    in_rebuffer: false,
                    rebuffer_events: 0,
                    rung_switches: 0,
                    rung_sum: 0,
                    delivered_bits: 0,
                    latency_sum: 0,
                    latency_max: 0,
                    fault_rebuffers: 0,
                    fault_rebuffer_ticks: 0,
                },
                done: false,
            });
            (cohorts.len() - 1) as u32
        });
        let c = &mut cohorts[cid as usize];
        c.n += 1;
        if let Some(g) = c.members.iter_mut().find(|g| g.depart_at == depart_at) {
            g.count += 1;
        } else {
            c.members.push(MemberGroup {
                start_tick,
                depart_at,
                count: 1,
                startup_ticks: 0,
            });
        }
    }
    cohorts
}

/// Merges cohort `b` into `a` (same edge, equal state): member groups
/// carry over, combining with any group they are indistinguishable
/// from. `b` becomes a tombstone its pending calendar events redirect
/// through.
fn merge_into(cohorts: &mut [Cohort], a: u32, b: u32) {
    debug_assert!(a != b);
    debug_assert_eq!(cohorts[a as usize].edge, cohorts[b as usize].edge);
    // Failover identity must match too: classes with different homes
    // (or ring keys) would diverge again at the next fault event.
    debug_assert_eq!(cohorts[a as usize].home_edge, cohorts[b as usize].home_edge);
    debug_assert_eq!(cohorts[a as usize].title, cohorts[b as usize].title);
    debug_assert_eq!(cohorts[a as usize].ring_key, cohorts[b as usize].ring_key);
    debug_assert!(cohorts[a as usize].state == cohorts[b as usize].state);
    let groups = std::mem::take(&mut cohorts[b as usize].members);
    let moved = std::mem::take(&mut cohorts[b as usize].n);
    cohorts[b as usize].done = true;
    let target = &mut cohorts[a as usize];
    target.n += moved;
    for g in groups {
        if let Some(g2) = target.members.iter_mut().find(|g2| {
            g2.start_tick == g.start_tick
                && g2.depart_at == g.depart_at
                && g2.startup_ticks == g.startup_ticks
        }) {
            g2.count += g.count;
        } else {
            target.members.push(g);
        }
    }
}

/// One merge sweep over the active set: bucket by a cheap integral key,
/// then collapse classes whose full state compares equal. Report
/// values are unaffected (see [`MERGE_EVERY`]); only the number of
/// actors the next quanta touch shrinks.
fn merge_converged(cohorts: &mut [Cohort], active: &mut Vec<u32>, alias: &mut [u32]) {
    if active.len() < 2 {
        return;
    }
    // Every field here must also be part of merge legality (the
    // `CohortState` equality, plus the failover identity), so tighter
    // bucketing never hides a legal merge — it only spares the
    // full-state compare for classes that can't merge anyway (e.g.
    // same-phase cohorts whose EWMA or buffer history differs).
    // `home_edge`/`ring_key` are `(edge, 0)` on plan-free runs, so they
    // split no bucket that the plan-free engine would have merged.
    let cheap_key = |c: &Cohort| {
        (
            c.edge,
            c.home_edge,
            c.title,
            c.ring_key,
            c.state.seg,
            c.state.rung,
            c.state.fetched,
            c.state.fetch_start,
            c.state.delivered_bits,
            c.state.buffer_ticks.to_bits(),
            c.state.remaining_bytes.to_bits(),
        )
    };
    let mut ids: Vec<u32> = active.clone();
    ids.sort_by_key(|&cid| cheap_key(&cohorts[cid as usize]));
    let mut merged_any = false;
    let mut start = 0;
    while start < ids.len() {
        let mut end = start + 1;
        while end < ids.len()
            && cheap_key(&cohorts[ids[end] as usize]) == cheap_key(&cohorts[ids[start] as usize])
        {
            end += 1;
        }
        if end - start > 1 {
            // Within a bucket, the first cohort with each distinct full
            // state is canonical; the rest merge into it.
            let mut canon: Vec<u32> = Vec::new();
            for &cid in &ids[start..end] {
                match canon.iter().find(|&&a| {
                    cohorts[a as usize].edge == cohorts[cid as usize].edge
                        && cohorts[a as usize].state == cohorts[cid as usize].state
                }) {
                    Some(&a) => {
                        merge_into(cohorts, a, cid);
                        alias[cid as usize] = a;
                        merged_any = true;
                    }
                    None => canon.push(cid),
                }
            }
        }
        start = end;
    }
    if merged_any {
        active.retain(|&cid| !cohorts[cid as usize].done);
    }
}

/// Re-homes one cohort after the up/down edge set changed: home
/// whenever the home edge is up (failback), else the first live edge
/// clockwise from its ring key. The home-if-up branch is what makes
/// the ≤ 1/N remap bound structural: a crash moves only the crashed
/// edge's own classes, never a survivor's. Returns the sessions moved.
fn rehome(c: &mut Cohort, edge_up: &[bool], ring: &HashRing) -> u64 {
    let target = if edge_up[c.home_edge] {
        c.home_edge
    } else {
        // All edges down leaves the class parked on its home edge.
        ring.route_alive(c.ring_key, edge_up).unwrap_or(c.home_edge)
    };
    if target == c.edge {
        return 0;
    }
    c.edge = target;
    c.n
}

/// Recomputes every edge's serving shield after the shield up/down set
/// changed: home while the home shield is up (failback), else the
/// first live shield clockwise from the edge's ring key — parked on
/// the (down) home when every shield is down.
fn reroute_shields(
    edge_shield: &mut [usize],
    shield_up: &[bool],
    ring: &HashRing,
    keys: &[u64],
    shields: usize,
) {
    let edges = edge_shield.len();
    for (e, slot) in edge_shield.iter_mut().enumerate() {
        let home = shield_home(e, edges, shields);
        *slot = if shield_up[home] {
            home
        } else {
            ring.route_alive(keys[e], shield_up).unwrap_or(home)
        };
    }
}

/// One cohort-counted cache request with the tier glue applied: the
/// edge's admission sketch sees the demand first (every request feeds
/// frequency, hit or miss), and a request that *starts* an edge fill
/// registers on the serving shield — a shield hit, a new origin fill,
/// or a coalesce into one already in flight. With admission off and no
/// shield this is exactly [`SimEdge::request_n`].
fn cohort_request(
    e: &mut SimEdge,
    adm: &mut Option<Admission>,
    shield: Option<&mut SimShield>,
    key: ObjKey,
    bytes: f64,
    n: u64,
) -> Req {
    if let Some(a) = adm.as_mut() {
        a.record(obj_key_hash(key), n);
    }
    let req = e.request_n(key, bytes, n);
    if let (Req::Wait(true), Some(sh)) = (req, shield) {
        sh.request(key, bytes);
    }
    req
}

/// The cohort fluid engine. Semantically the per-session quantum
/// engine (`serve::oracle`) run at cohort granularity: identical DVR
/// maintenance, origin-fill drain, max-min downlink sharing, ABR,
/// playout, and live gates per quantum — with per-quantum cost
/// O(active cohorts) instead of O(population), idle stretches jumped
/// via the event calendar, and finished classes folded straight into
/// the report accumulator. Multi-title catalogs key every cache object
/// by `(title, rung, seg)`; a shield tier (when `p.shields > 0`) sits
/// between the edges and the origin, so edge fills drain from shield
/// caches and only shield misses cross the true origin link.
pub(crate) fn run_cohorts(titles: &[Manifest], load: &LoadConfig, p: &TierParams) -> CohortRun {
    let seg_counts: Vec<usize> = titles.iter().map(Manifest::segment_count).collect();
    let q = load.tick_quantum.max(1);

    let mut edges = build_edges(titles, p);
    let (schedule, phantoms) = build_schedule(load);
    let n_sessions = schedule.len() + phantoms;
    let all_arrived_by = schedule.iter().map(|&(s, _)| s).max().unwrap_or(0);
    let ring = build_ring(load, p);
    let sampler = (titles.len() > 1).then(|| ZipfSampler::new(titles.len(), p.zipf_s));
    let mut cohorts = form_cohorts(
        &schedule,
        &seg_counts,
        load,
        p,
        &mut edges,
        ring.as_ref(),
        sampler.as_ref(),
    );

    // The shield tier — empty in the flat topology, which is the
    // legacy code path bit-identically (nothing below consults an
    // empty shield vec). Per-edge admission sketches likewise build to
    // `None` under admit-always, leaving every insert a plain insert.
    let shields_on = p.shields > 0;
    let mut shields = if shields_on {
        build_shields(
            titles,
            p.shields,
            p.shield_cache_capacity_bytes,
            p.prewarm,
            p.edges,
        )
    } else {
        Vec::new()
    };
    let mut edge_adm: Vec<Option<Admission>> = (0..p.edges).map(|_| p.admission.build()).collect();

    let mut cal = EventCalendar::default();
    for (cid, c) in cohorts.iter().enumerate() {
        let start = c.members.first().map_or(0, |g| g.start_tick);
        cal.push(start, EventKind::Arrive, cid as u32);
        for g in &c.members {
            if let Some(d) = g.depart_at {
                cal.push(d, EventKind::Depart, cid as u32);
            }
        }
    }
    // Fault actions ride the same heap (payload: action index), so
    // fault replay is exactly as deterministic as arrivals are.
    let faulted = p.faults.is_some();
    let fault_seed = p.faults.as_ref().map(|f| f.seed);
    let fault_actions: &[(u64, FaultAction)] =
        p.faults.as_ref().map_or(&[], |f| f.actions.as_slice());
    for (ai, &(t, _)) in fault_actions.iter().enumerate() {
        cal.push(t, EventKind::Fault, ai as u32);
    }
    let mut alias: Vec<u32> = (0..cohorts.len() as u32).collect();

    // Fault state. All of it is inert on a plan-free run: every edge
    // stays up, every scale stays exactly 1.0 (and `x * 1.0` is
    // IEEE-exact), so the plan-free trajectory is bit-identical.
    let mut edge_up = vec![true; p.edges];
    let mut crash_tick: Vec<Option<u64>> = vec![None; p.edges];
    let mut shield_up = vec![true; p.shields];
    let mut shield_crash_tick: Vec<Option<u64>> = vec![None; p.shields];
    // Which shield each edge currently fills from: its home, unless
    // the home is down and the shield ring re-routed it to a survivor.
    let mut edge_shield: Vec<usize> = (0..p.edges)
        .map(|e| {
            if shields_on {
                shield_home(e, p.edges, p.shields)
            } else {
                0
            }
        })
        .collect();
    let shield_ring = (shields_on && faulted)
        .then(|| HashRing::new(p.shields, RING_VNODES, load.seed ^ SHIELD_RING_SALT));
    let shield_keys: Vec<u64> = (0..p.edges)
        .map(|e| fault_seed.map_or(0, |s| splitmix64(s ^ SHIELD_KEY_SALT ^ e as u64)))
        .collect();
    // Cold-restarted edges count their fills as re-warm traffic until
    // the wiped cache holds an object again.
    let mut rewarming = vec![false; p.edges];
    // Active degradation spans per link; the effective scale is the
    // product, recomputed from the span list on every change so a
    // span's end unwinds its start exactly (no multiply/divide drift).
    let mut edge_degrades: Vec<Vec<f64>> = vec![Vec::new(); p.edges];
    let mut origin_degrades: Vec<f64> = Vec::new();
    let mut edge_scale = vec![1.0f64; p.edges];
    let mut origin_scale = 1.0f64;
    let mut flap_down = false;
    let mut restore_sum = 0u64;
    let mut res = ResilienceStats::default();

    let mut acc = Acc::default();
    // Active cohort ids, kept sorted ascending — the iteration order is
    // cohort creation order, exactly the oracle's session order.
    let mut active: Vec<u32> = Vec::with_capacity(cohorts.len());
    let mut downloading = vec![0u64; p.edges];

    // Graceful degradation folds into every rung pick: once fault
    // pressure has made a class rebuffer, it pins to the lowest rung
    // (keep playing over keep quality). With `fault_rebuffers == 0` —
    // always, on a plan-free run — this is exactly the plain ABR pick.
    let pick_rung = |s: &CohortState, m: &Manifest| -> usize {
        if s.fault_rebuffers > 0 || s.fetched == 0 {
            0
        } else {
            s.abr.pick(m, s.seg, None)
        }
    };

    let mut now = 0u64;
    let mut alive = schedule.len() as u64;
    let mut quanta = 0u64;
    let mut last_first_seq = vec![0u64; titles.len()];
    let mut publish_wait_ticks = 0u64;
    let mut window_skips = 0u64;
    while alive > 0 && now < load.max_ticks {
        // Calendar events due this quantum: fault actions mutate the
        // tier; arrivals activate their cohort; a departure splits its
        // member group out of the (possibly merged) class and folds it,
        // departed, at the quantum it fell due — exactly the oracle's
        // loop top.
        while let Some((tick, kind, cid)) = cal.pop_due(now) {
            if kind == EventKind::Fault {
                match fault_actions[cid as usize].1 {
                    FaultAction::EdgeDown(e) => {
                        if !edge_up[e] {
                            continue;
                        }
                        edge_up[e] = false;
                        crash_tick[e] = Some(tick);
                        res.edge_crashes += 1;
                        // In-flight fills die with the edge; re-homed
                        // waiters re-request on survivors, where
                        // `FillTable` coalescing absorbs the herd.
                        let lost: Vec<ObjKey> =
                            edges[e].fills.iter_mut().map(|(k, _)| k.0).collect();
                        res.fills_lost += lost.len() as u64;
                        for k in lost {
                            edges[e].fills.fail(&k, 0);
                        }
                        if let Some(r) = ring.as_ref() {
                            for &a in &active {
                                res.sessions_rehomed +=
                                    rehome(&mut cohorts[a as usize], &edge_up, r);
                            }
                        }
                    }
                    FaultAction::EdgeUp(e, cold) => {
                        if edge_up[e] {
                            continue;
                        }
                        edge_up[e] = true;
                        res.edge_restarts += 1;
                        if let Some(t0) = crash_tick[e].take() {
                            restore_sum += tick - t0;
                        }
                        if cold {
                            edges[e].lru.clear();
                            rewarming[e] = true;
                        }
                        // Failback: every class whose home just came
                        // back moves home again.
                        if let Some(r) = ring.as_ref() {
                            for &a in &active {
                                res.sessions_rehomed +=
                                    rehome(&mut cohorts[a as usize], &edge_up, r);
                            }
                        }
                    }
                    FaultAction::ShieldDown(si) => {
                        if !shield_up[si] {
                            continue;
                        }
                        shield_up[si] = false;
                        shield_crash_tick[si] = Some(tick);
                        res.shield_crashes += 1;
                        // In-flight origin fills die with the shield;
                        // orphaned edge fills re-register on the
                        // failover shield via the re-request pass.
                        let lost: Vec<ObjKey> =
                            shields[si].fills.iter_mut().map(|(k, _)| k.0).collect();
                        res.fills_lost += lost.len() as u64;
                        for k in lost {
                            shields[si].fills.fail(&k, 0);
                        }
                        if let Some(r) = shield_ring.as_ref() {
                            reroute_shields(
                                &mut edge_shield,
                                &shield_up,
                                r,
                                &shield_keys,
                                p.shields,
                            );
                        }
                    }
                    FaultAction::ShieldUp(si, cold) => {
                        if shield_up[si] {
                            continue;
                        }
                        shield_up[si] = true;
                        res.shield_restarts += 1;
                        if let Some(t0) = shield_crash_tick[si].take() {
                            restore_sum += tick - t0;
                        }
                        if cold {
                            shields[si].lru.clear();
                        }
                        // Failback: every child edge whose home shield
                        // just came back moves home again.
                        if let Some(r) = shield_ring.as_ref() {
                            reroute_shields(
                                &mut edge_shield,
                                &shield_up,
                                r,
                                &shield_keys,
                                p.shields,
                            );
                        }
                    }
                    FaultAction::OriginDown => flap_down = true,
                    FaultAction::OriginUp => flap_down = false,
                    FaultAction::DegradeStart(Some(e), s) => {
                        edge_degrades[e].push(s);
                        edge_scale[e] = edge_degrades[e].iter().product();
                    }
                    FaultAction::DegradeStart(None, s) => {
                        origin_degrades.push(s);
                        origin_scale = origin_degrades.iter().product();
                    }
                    FaultAction::DegradeEnd(Some(e), s) => {
                        if let Some(i) = edge_degrades[e].iter().position(|&x| x == s) {
                            edge_degrades[e].remove(i);
                        }
                        edge_scale[e] = edge_degrades[e].iter().product();
                    }
                    FaultAction::DegradeEnd(None, s) => {
                        if let Some(i) = origin_degrades.iter().position(|&x| x == s) {
                            origin_degrades.remove(i);
                        }
                        origin_scale = origin_degrades.iter().product();
                    }
                }
                continue;
            }
            let cid = resolve(&alias, cid);
            let c = &mut cohorts[cid as usize];
            if c.done {
                continue;
            }
            match kind {
                EventKind::Fault => unreachable!("handled before cohort resolution"),
                EventKind::Arrive => {
                    if let Err(pos) = active.binary_search(&cid) {
                        active.insert(pos, cid);
                    }
                    // A class arriving into a crashed home lands on a
                    // survivor straight away.
                    if faulted {
                        if let Some(r) = ring.as_ref() {
                            res.sessions_rehomed += rehome(c, &edge_up, r);
                        }
                    }
                }
                EventKind::Depart => {
                    let mut folded = 0u64;
                    let state = &c.state;
                    c.members.retain(|g| {
                        if g.depart_at == Some(tick) {
                            acc.fold(state, g, Some(now), false, now);
                            folded += g.count;
                            false
                        } else {
                            true
                        }
                    });
                    alive -= folded;
                    c.n -= folded;
                    if c.members.is_empty() {
                        c.done = true;
                        if let Ok(pos) = active.binary_search(&cid) {
                            active.remove(pos);
                        }
                    }
                }
            }
        }
        if active.is_empty() {
            // Idle fast-forward: jump to the quantum boundary of the
            // next calendar event (or the ceiling) — the boundary the
            // oracle's q-at-a-time idle ticking would reach. Fault
            // events are calendar events, so the jump never skips one.
            let ceiling = quantized_jump(now, load.max_ticks, q);
            now = match cal.next_tick() {
                Some(t) => quantized_jump(now, t, q).min(ceiling),
                None => ceiling,
            };
            continue;
        }
        // Fault pressure this quantum: anything down, flapping, or
        // running degraded. Gates the fast-forward paths and attributes
        // rebuffer accounting; always `false` on a plan-free run.
        let fault_active = faulted
            && (flap_down
                || edge_up.iter().any(|&u| !u)
                || shield_up.iter().any(|&u| !u)
                || origin_scale != 1.0
                || edge_scale.iter().any(|&s| s != 1.0));
        // Publish fast-forward: when every active cohort is a caught-up
        // live viewer (started, pending, its segment not yet published)
        // and no origin fill is in flight, nothing can change before the
        // next publish, arrival, or departure. Apply the skipped
        // quanta's playout drain and publish-wait accrual analytically
        // — exact, because both are integer-valued f64 arithmetic — and
        // jump. This is what turns a 400-tick publish pace into
        // O(download quanta) work per segment instead of O(pace).
        if let Some(l) = p.live {
            // Under fault pressure the per-quantum path stays
            // authoritative (degraded links and parked classes change
            // what a quantum does), so the jump is gated off. A cohort
            // caught up on its *own* title gates on that title's
            // publish clock; for a single title this is exactly the
            // pre-catalog condition (`seg > live` forces the published
            // prefix to be strictly shorter than the title).
            let idle_until_publish = !fault_active
                && edges.iter().all(|e| e.fills.is_empty())
                && shields.iter().all(|s| s.fills.is_empty())
                && active.iter().all(|&cid| {
                    let c = &cohorts[cid as usize];
                    let s = &c.state;
                    s.started
                        && s.pending_request
                        && s.seg as u64 > l.live_seq(now, seg_counts[c.title as usize])
                });
            if idle_until_publish {
                let ceiling = quantized_jump(now, load.max_ticks, q);
                // The earliest next publish any active class waits on.
                let next_pub = active
                    .iter()
                    .map(|&cid| {
                        let nseg = seg_counts[cohorts[cid as usize].title as usize];
                        l.publish_tick(l.live_seq(now, nseg) + 1)
                    })
                    .min()
                    .expect("active is nonempty here");
                let mut target = quantized_jump(now, next_pub.max(now + 1), q);
                if let Some(t) = cal.next_tick() {
                    target = target.min(quantized_jump(now, t, q));
                }
                target = target.min(ceiling);
                let skipped = (target - now) / q;
                if skipped > 0 {
                    for &cid in active.iter() {
                        let c = &mut cohorts[cid as usize];
                        let n = c.n;
                        let s = &mut c.state;
                        publish_wait_ticks += skipped * q * n;
                        if s.playing {
                            // k clamped unit drains collapse to one:
                            // the buffer either survives the whole jump
                            // or empties (entering rebuffer at the
                            // quantum it first ran dry).
                            let drain = (skipped * q) as f64;
                            if s.buffer_ticks >= drain {
                                s.buffer_ticks -= drain;
                            } else {
                                if !s.in_rebuffer {
                                    s.in_rebuffer = true;
                                    s.rebuffer_events += 1;
                                }
                                s.buffer_ticks = 0.0;
                            }
                        }
                    }
                    now = target;
                    continue;
                }
            }
        }
        let step = q as f64;
        let mut progressed = false;

        // Live DVR-window maintenance: segments that left the window
        // are invalidated from every edge and shield cache (the
        // origin's purge, not capacity pressure — eviction counters
        // are untouched).
        if let Some(l) = p.live {
            for (ti, m) in titles.iter().enumerate() {
                let first = l.first_seq(now, seg_counts[ti]);
                for seq in last_first_seq[ti]..first {
                    for ri in 0..m.rungs.len() {
                        let key = (ti as u32, ri as u32, seq as u32);
                        for e in edges.iter_mut() {
                            if e.lru.remove(&key).is_some() {
                                e.stats.invalidations += 1;
                            }
                        }
                        for sh in shields.iter_mut() {
                            if sh.lru.remove(&key).is_some() {
                                sh.stats.invalidations += 1;
                            }
                        }
                    }
                }
                last_first_seq[ti] = last_first_seq[ti].max(first);
            }
        }

        // Parent fills: in the flat topology every in-flight *edge*
        // fill shares the origin uplink max-min-equally; an outage
        // freezes them all. With a shield tier, only *shield* fills
        // touch the true origin — edge fills drain from their shield's
        // cache over the shield downlink once the object is there.
        // Fills land *before* the downlink shares are computed, so
        // waiters waking this quantum count toward their edge's split.
        let origin_down = p.origin_down_after.is_some_and(|t| now >= t) || flap_down;
        if !shields_on {
            let total_fills: usize = edges.iter().map(|e| e.fills.len()).sum();
            if total_fills > 0 && !origin_down && p.origin_capacity > 0.0 {
                let fill_rate = p.origin_capacity * origin_scale / total_fills as f64;
                for (ei, e) in edges.iter_mut().enumerate() {
                    let done: Vec<ObjKey> = e
                        .fills
                        .iter_mut()
                        .filter_map(|(k, rem)| {
                            *rem -= fill_rate * step;
                            let total = titles[k.0 .0 as usize].rungs[k.0 .1 as usize].segments
                                [k.0 .2 as usize]
                                .bytes as f64;
                            (*rem <= completion_eps(total)).then_some(k.0)
                        })
                        .collect();
                    for k in done {
                        e.fills.complete(&k, 0);
                        let bytes =
                            titles[k.0 as usize].rungs[k.1 as usize].segments[k.2 as usize].bytes;
                        e.stats.origin_bytes += bytes as u64;
                        // Admission may refuse to cache the filled
                        // object; its waiters still wake via the pass
                        // set (serve-through without caching).
                        if !admit_insert(&mut e.lru, &edge_adm[ei], k, bytes) {
                            e.pass.insert(k);
                        }
                        e.stats.evictions = e.lru.evictions();
                        // The wiped cache holds an object again: later
                        // fills are ordinary demand fills, not re-warm.
                        rewarming[ei] = false;
                    }
                }
                progressed = true;
            }
        } else {
            // Re-request pass first: edge fills whose serving shield
            // neither caches the object nor has an origin fill in
            // flight (shield crash, failover, or shield-side eviction)
            // re-register as shield misses — one origin fill restarts
            // no matter how many child edges wait on it.
            for ei in 0..p.edges {
                let si = edge_shield[ei];
                if !shield_up[si] {
                    continue;
                }
                let orphaned: Vec<ObjKey> = edges[ei]
                    .fills
                    .iter()
                    .map(|(k, _)| k.0)
                    .filter(|k| !shields[si].lru.contains(k) && !shields[si].fills.contains(k, 0))
                    .collect();
                for k in orphaned {
                    let bytes = titles[k.0 as usize].rungs[k.1 as usize].segments[k.2 as usize]
                        .bytes as f64;
                    shields[si].stats.misses += 1;
                    shields[si].fills.request(k, 0, || bytes);
                    progressed = true;
                }
            }
            // Shield→origin leg: every in-flight shield fill shares
            // the true origin uplink.
            let total_fills: usize = shields.iter().map(|s| s.fills.len()).sum();
            if total_fills > 0 && !origin_down && p.origin_capacity > 0.0 {
                let fill_rate = p.origin_capacity * origin_scale / total_fills as f64;
                for sh in shields.iter_mut() {
                    let done: Vec<ObjKey> = sh
                        .fills
                        .iter_mut()
                        .filter_map(|(k, rem)| {
                            *rem -= fill_rate * step;
                            let total = titles[k.0 .0 as usize].rungs[k.0 .1 as usize].segments
                                [k.0 .2 as usize]
                                .bytes as f64;
                            (*rem <= completion_eps(total)).then_some(k.0)
                        })
                        .collect();
                    for k in done {
                        sh.fills.complete(&k, 0);
                        let bytes =
                            titles[k.0 as usize].rungs[k.1 as usize].segments[k.2 as usize].bytes;
                        sh.stats.origin_bytes += bytes as u64;
                        sh.lru.insert(k, bytes);
                        sh.stats.evictions = sh.lru.evictions();
                    }
                }
                progressed = true;
            }
            // Shield→edge leg: edge fills whose object the shield now
            // caches drain over the shield's downlink, max-min-shared
            // across that shield's concurrently-drawing fills.
            let mut draw = vec![0usize; p.shields];
            for (ei, e) in edges.iter().enumerate() {
                let si = edge_shield[ei];
                if !shield_up[si] {
                    continue;
                }
                draw[si] += e
                    .fills
                    .iter()
                    .filter(|(k, _)| shields[si].lru.contains(&k.0))
                    .count();
            }
            for ei in 0..p.edges {
                let si = edge_shield[ei];
                if !shield_up[si] || draw[si] == 0 {
                    continue;
                }
                let rate = p.shield_capacity / draw[si] as f64;
                let done: Vec<ObjKey> = edges[ei]
                    .fills
                    .iter_mut()
                    .filter_map(|(k, rem)| {
                        if !shields[si].lru.contains(&k.0) {
                            return None;
                        }
                        *rem -= rate * step;
                        let total = titles[k.0 .0 as usize].rungs[k.0 .1 as usize].segments
                            [k.0 .2 as usize]
                            .bytes as f64;
                        (*rem <= completion_eps(total)).then_some(k.0)
                    })
                    .collect();
                let e = &mut edges[ei];
                for k in done {
                    e.fills.complete(&k, 0);
                    let bytes =
                        titles[k.0 as usize].rungs[k.1 as usize].segments[k.2 as usize].bytes;
                    e.stats.origin_bytes += bytes as u64;
                    shields[si].lru.touch(&k);
                    shields[si].stats.served_bytes += bytes as u64;
                    if !admit_insert(&mut e.lru, &edge_adm[ei], k, bytes) {
                        e.pass.insert(k);
                    }
                    e.stats.evictions = e.lru.evictions();
                    rewarming[ei] = false;
                }
                progressed = true;
            }
        }

        // Per-edge downlink shares, weighted by cohort counts: a
        // waiter whose object just landed will download this quantum,
        // so its whole class counts — otherwise a burst of waking
        // waiters would oversubscribe the edge link. A publish-gated
        // cohort counts only if its segment is now live *and* already
        // cached (it will request and hit below).
        downloading.iter_mut().for_each(|d| *d = 0);
        for &cid in &active {
            let c = &cohorts[cid as usize];
            if !edge_up[c.edge] {
                // Parked (every edge down): nothing downloads.
                continue;
            }
            let s = &c.state;
            let will_download = if s.pending_request {
                // Publish gate first: a caught-up live-edge cohort (the
                // common case, most quanta) answers without touching the
                // ABR or the cache index.
                let l = p.live.expect("pending only in live mode");
                s.seg as u64 <= l.live_seq(now, seg_counts[c.title as usize]) && {
                    let rung = pick_rung(s, &titles[c.title as usize]);
                    edges[c.edge]
                        .lru
                        .contains(&(c.title, rung as u32, s.seg as u32))
                }
            } else if s.waiting {
                let key = (c.title, s.rung as u32, s.seg as u32);
                edges[c.edge].lru.contains(&key) || edges[c.edge].pass.contains(&key)
            } else {
                true
            };
            if will_download {
                downloading[c.edge] += c.count();
            }
        }

        for &cid in &active {
            let Cohort {
                edge,
                title,
                members,
                state: s,
                n,
                done,
                ..
            } = &mut cohorts[cid as usize];
            let edge = *edge;
            let title = *title;
            let n = *n;
            let m = &titles[title as usize];
            let nseg = seg_counts[title as usize];
            if !edge_up[edge] {
                // Parked: every edge is down, failover had nowhere to
                // go. Playout keeps draining — members stall in place,
                // all of it fault-attributed — but no request, fill,
                // or download can move until a restart re-homes.
                if s.playing {
                    s.buffer_ticks -= step;
                    if s.buffer_ticks < 0.0 {
                        if !s.in_rebuffer {
                            s.in_rebuffer = true;
                            s.rebuffer_events += 1;
                            s.fault_rebuffers += 1;
                        }
                        s.buffer_ticks = 0.0;
                    }
                }
                if s.in_rebuffer {
                    s.fault_rebuffer_ticks += q;
                }
                continue;
            }
            let e = &mut edges[edge];
            if !s.started {
                s.started = true;
                let live_now = p
                    .live
                    .map_or(true, |l| s.seg as u64 <= l.live_seq(now, nseg));
                if live_now {
                    let bytes = m.rungs[0].segments[s.seg].bytes as f64;
                    let sh = if shields_on && shield_up[edge_shield[edge]] {
                        Some(&mut shields[edge_shield[edge]])
                    } else {
                        None
                    };
                    match cohort_request(
                        e,
                        &mut edge_adm[edge],
                        sh,
                        (title, 0, s.seg as u32),
                        bytes,
                        n,
                    ) {
                        Req::Hit => s.remaining_bytes += bytes,
                        Req::Wait(new_fill) => {
                            s.waiting = true;
                            progressed |= new_fill;
                            if new_fill && (fault_active || rewarming[edge]) {
                                res.rewarm_fills += 1;
                            }
                        }
                    }
                } else {
                    s.pending_request = true;
                }
            }
            // Playout drains while the next segment downloads (or while
            // the class waits on a fill or the live edge).
            if s.playing {
                s.buffer_ticks -= step;
                if s.buffer_ticks < 0.0 {
                    if !s.in_rebuffer {
                        s.in_rebuffer = true;
                        s.rebuffer_events += 1;
                        if fault_active {
                            s.fault_rebuffers += 1;
                        }
                    }
                    s.buffer_ticks = 0.0;
                }
            }
            if fault_active && s.in_rebuffer {
                s.fault_rebuffer_ticks += q;
            }
            // A segment chosen but not yet requested: the live edge
            // had not published it. Re-check the window now.
            if s.pending_request {
                let l = p.live.expect("pending only in live mode");
                let first = l.first_seq(now, nseg) as usize;
                if s.seg < first {
                    // Too slow: the segment expired out of the DVR
                    // window before we ever asked. Skip forward.
                    window_skips += (first - s.seg) as u64 * n;
                    s.seg = first;
                }
                if s.seg as u64 <= l.live_seq(now, nseg) {
                    s.pending_request = false;
                    let rung = pick_rung(s, m);
                    if s.fetched > 0 && rung != s.rung {
                        s.rung_switches += 1;
                    }
                    s.rung = rung;
                    s.fetch_start = now;
                    let bytes = m.rungs[rung].segments[s.seg].bytes as f64;
                    let sh = if shields_on && shield_up[edge_shield[edge]] {
                        Some(&mut shields[edge_shield[edge]])
                    } else {
                        None
                    };
                    let key = (title, rung as u32, s.seg as u32);
                    match cohort_request(e, &mut edge_adm[edge], sh, key, bytes, n) {
                        Req::Hit => s.remaining_bytes += bytes,
                        Req::Wait(new_fill) => {
                            s.waiting = true;
                            progressed |= new_fill;
                            if new_fill && (fault_active || rewarming[edge]) {
                                res.rewarm_fills += 1;
                            }
                        }
                    }
                } else {
                    publish_wait_ticks += q * n;
                    continue;
                }
            }
            if s.waiting {
                let key = (title, s.rung as u32, s.seg as u32);
                let bytes = m.rungs[s.rung].segments[s.seg].bytes as f64;
                if e.lru.touch(&key) || e.pass.contains(&key) {
                    // The fill landed (cached, or admission-rejected
                    // but passed through): start the edge-leg download,
                    // with `fetch_start` still at request time so the
                    // ABR sees the full wait. The fall-through download
                    // decrement below marks the progress.
                    s.waiting = false;
                    s.remaining_bytes += bytes;
                } else {
                    if !e.fills.contains(&key, 0) {
                        // The filled object was evicted before this
                        // class could download it — or the class was
                        // just re-homed onto an edge with no fill in
                        // flight: re-request (one fill restarts no
                        // matter how many members wait).
                        e.stats.misses += 1;
                        e.fills.request(key, 0, || bytes);
                        if shields_on && shield_up[edge_shield[edge]] {
                            shields[edge_shield[edge]].request(key, bytes);
                        }
                        progressed = true;
                        if fault_active || rewarming[edge] {
                            res.rewarm_fills += 1;
                        }
                    }
                    continue;
                }
            }
            let rate = (p.edge_capacity * edge_scale[edge] / downloading[edge].max(1) as f64)
                .min(p.per_session);
            s.remaining_bytes -= rate * step;
            progressed = true;
            let entry = &m.rungs[s.rung].segments[s.seg];
            if s.remaining_bytes > completion_eps(entry.bytes as f64) {
                continue;
            }
            // Segment complete at the end of this quantum — for every
            // member at once (the class shares one download trajectory).
            let end = now + q;
            let elapsed = end.saturating_sub(s.fetch_start).max(1);
            s.abr.observe((entry.bytes * 8) as f64, elapsed as f64);
            s.delivered_bits += (entry.bytes * 8) as u64;
            s.rung_sum += s.rung as u64;
            s.buffer_ticks += (entry.frames as u64 * m.ticks_per_frame) as f64;
            s.in_rebuffer = false;
            s.fetched += 1;
            e.stats.served_bytes += entry.bytes as u64 * n;
            if let Some(l) = p.live {
                let lat = end.saturating_sub(l.publish_tick(s.seg as u64));
                s.latency_sum += lat;
                s.latency_max = s.latency_max.max(lat);
            }
            if !s.playing && s.fetched >= s.startup_after {
                s.playing = true;
                for g in members.iter_mut() {
                    g.startup_ticks = end - g.start_tick;
                }
            }
            s.seg += 1;
            if s.seg == nseg {
                for g in members.iter() {
                    acc.fold(s, g, Some(end), true, now);
                }
                alive -= n;
                *done = true;
                continue;
            }
            // Live gates for the next segment, evaluated at the
            // completion tick (the same tick the next quantum sees).
            if let Some(l) = p.live {
                let first = l.first_seq(end, nseg) as usize;
                if s.seg < first {
                    window_skips += (first - s.seg) as u64 * n;
                    s.seg = first;
                }
                if s.seg as u64 > l.live_seq(end, nseg) {
                    // Caught up with the live edge: wait for the next
                    // publish, discarding the download overshoot (the
                    // link idles — pacing, not congestion).
                    s.pending_request = true;
                    s.remaining_bytes = 0.0;
                    continue;
                }
            }
            let next_rung = pick_rung(s, m);
            if next_rung != s.rung {
                s.rung_switches += 1;
            }
            s.rung = next_rung;
            let bytes = m.rungs[s.rung].segments[s.seg].bytes as f64;
            let sh = if shields_on && shield_up[edge_shield[edge]] {
                Some(&mut shields[edge_shield[edge]])
            } else {
                None
            };
            let key = (title, s.rung as u32, s.seg as u32);
            match cohort_request(e, &mut edge_adm[edge], sh, key, bytes, n) {
                // A hit carries this quantum's download overshoot into
                // the next segment, exactly like the single-origin path.
                Req::Hit => s.remaining_bytes += bytes,
                Req::Wait(new_fill) => {
                    s.waiting = true;
                    s.remaining_bytes = 0.0;
                    progressed |= new_fill;
                    if new_fill && (fault_active || rewarming[edge]) {
                        res.rewarm_fills += 1;
                    }
                }
            }
            s.fetch_start = end;
        }
        active.retain(|&cid| !cohorts[cid as usize].done);
        // Pass-set entries only bridge a fill's completion to its
        // waiters' wake within the quantum; clear them so an admission
        // reject never masquerades as a cache hit later. Always empty
        // under admit-always (the legacy path clears nothing).
        for e in edges.iter_mut() {
            e.pass.clear();
        }
        quanta += 1;
        if quanta % MERGE_EVERY == 0 {
            merge_converged(&mut cohorts, &mut active, &mut alias);
        }
        now += q;
        // Stasis: every arrival has happened and a whole quantum passed
        // with no byte moved anywhere (e.g. an origin outage with cold
        // caches) — and no publish or departure is still due, so the
        // state can never change again.
        if !progressed && now > all_arrived_by {
            // A scheduled restart or recovery can still unfreeze a
            // fully stalled tier; a plan that crashes everything
            // forever leaves nothing due and terminates cleanly here.
            let faults_due = cal.fault_pending();
            // Parked classes (their edge is down) cannot consume a
            // publish or wake as waiters — only a fault event revives
            // them, and that is `faults_due`'s job to keep alive.
            let any_unparked = active
                .iter()
                .any(|&cid| edge_up[cohorts[cid as usize].edge]);
            let publishes_due = any_unparked
                && p.live.is_some_and(|l| {
                    active.iter().any(|&cid| {
                        let nseg = seg_counts[cohorts[cid as usize].title as usize];
                        l.live_seq(now, nseg) < nseg as u64 - 1
                    })
                });
            // A pending cohort will request (and progress) once its
            // segment publishes — including the final one, which may
            // have gone live this very quantum without being consumed
            // yet.
            let waiters_due = active.iter().any(|&cid| {
                let c = &cohorts[cid as usize];
                edge_up[c.edge] && c.state.pending_request
            });
            let departures_due = cal.departure_pending(&cohorts, &alias);
            if !faults_due && !publishes_due && !waiters_due && !departures_due {
                break;
            }
        }
    }
    // Survivors (still downloading at the ceiling, or never arrived)
    // fold with the oracle's unfinished-session arithmetic.
    for c in &cohorts {
        if !c.done {
            for g in &c.members {
                acc.fold(&c.state, g, None, false, now);
            }
        }
    }
    let live = LiveStats {
        mean_latency_ticks: acc.latency_sum as f64 / acc.fetched.max(1) as f64,
        max_latency_ticks: acc.latency_max,
        publish_wait_ticks,
        window_skips,
    };
    let restarts = res.edge_restarts + res.shield_restarts;
    res.mean_restore_ticks = if restarts == 0 {
        0.0
    } else {
        restore_sum as f64 / restarts as f64
    };
    res.sessions_fault_rebuffered = acc.fault_rebuffer_sessions;
    res.fault_rebuffer_ticks = acc.fault_rebuffer_ticks;
    let report = acc.report(n_sessions, now);
    CohortRun {
        report,
        edges,
        shields,
        live,
        resilience: res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{EdgeTierConfig, Sharding};
    use crate::ladder::{encode_ladder, LadderConfig};
    use crate::serve::{oracle, ChurnConfig, LiveConfig, ServerConfig};
    use crate::session::JoinMode;
    use proptest::prelude::*;
    use video::synth::SequenceGen;

    fn manifest() -> Manifest {
        let frames = SequenceGen::new(44).panning_sequence(48, 32, 16, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        encode_ladder("movie", &frames, &cfg).unwrap().manifest
    }

    fn rel_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    /// Cohort run vs per-session oracle: integer fields bit-exact, f64
    /// fields to 1e-9 relative (summation order), per-edge counters and
    /// live stats exact. Valid for unbounded caches — under bounded-
    /// cache *eviction* the engines may legally pick different victims.
    fn assert_matches_oracle(manifest: &Manifest, load: &LoadConfig, p: &TierParams) {
        let c = run_cohorts(std::slice::from_ref(manifest), load, p);
        let (o, o_edges, o_live) = oracle::run(manifest, load, p);
        let r = &c.report;
        assert_eq!(
            (
                r.sessions,
                r.completed,
                r.ticks,
                r.rebuffer_sessions,
                r.rung_switches,
                r.departed
            ),
            (
                o.sessions,
                o.completed,
                o.ticks,
                o.rebuffer_sessions,
                o.rung_switches,
                o.departed
            ),
            "integer report fields diverged:\n  cohort {r:?}\n  oracle {o:?}"
        );
        for (name, a, b) in [
            (
                "goodput",
                r.total_goodput_bits_per_tick,
                o.total_goodput_bits_per_tick,
            ),
            (
                "mean_session",
                r.mean_session_bits_per_tick,
                o.mean_session_bits_per_tick,
            ),
            ("startup", r.mean_startup_ticks, o.mean_startup_ticks),
            (
                "rebuffer_fraction",
                r.rebuffer_fraction,
                o.rebuffer_fraction,
            ),
            ("mean_rung", r.mean_rung, o.mean_rung),
        ] {
            assert!(rel_close(a, b), "{name} diverged: cohort {a} vs oracle {b}");
        }
        assert_eq!(c.edges.len(), o_edges.len());
        for (i, (ce, oe)) in c.edges.iter().zip(&o_edges).enumerate() {
            assert_eq!(ce.assigned, oe.assigned, "edge {i} assigned");
            assert_eq!(ce.stats, oe.stats, "edge {i} stats diverged");
        }
        assert!(
            rel_close(c.live.mean_latency_ticks, o_live.mean_latency_ticks),
            "mean latency diverged: {} vs {}",
            c.live.mean_latency_ticks,
            o_live.mean_latency_ticks
        );
        assert_eq!(
            (
                c.live.max_latency_ticks,
                c.live.publish_wait_ticks,
                c.live.window_skips
            ),
            (
                o_live.max_latency_ticks,
                o_live.publish_wait_ticks,
                o_live.window_skips
            ),
            "live counters diverged"
        );
    }

    #[test]
    fn calendar_orders_arrivals_before_departures_on_the_same_tick() {
        let mut cal = EventCalendar::default();
        cal.push(5, EventKind::Depart, 1);
        cal.push(5, EventKind::Arrive, 2);
        cal.push(3, EventKind::Depart, 0);
        assert_eq!(cal.next_tick(), Some(3));
        assert_eq!(cal.pop_due(2), None, "nothing due before tick 3");
        assert_eq!(cal.pop_due(8), Some((3, EventKind::Depart, 0)));
        assert_eq!(
            cal.pop_due(8),
            Some((5, EventKind::Arrive, 2)),
            "same-tick arrival must precede the departure (oracle loop order)"
        );
        assert_eq!(cal.pop_due(8), Some((5, EventKind::Depart, 1)));
        assert_eq!(cal.pop_due(8), None);
        assert_eq!(cal.next_tick(), None);
    }

    #[test]
    fn calendar_orders_faults_before_same_tick_arrivals() {
        // A crash at tick t must be visible to a tick-t arrival (the
        // arriving class lands on a survivor), and same-tick fault
        // actions apply in resolved order (ascending payload index).
        let mut cal = EventCalendar::default();
        cal.push(5, EventKind::Arrive, 9);
        cal.push(5, EventKind::Fault, 1);
        cal.push(5, EventKind::Fault, 0);
        assert!(cal.fault_pending());
        assert_eq!(cal.pop_due(5), Some((5, EventKind::Fault, 0)));
        assert_eq!(cal.pop_due(5), Some((5, EventKind::Fault, 1)));
        assert!(!cal.fault_pending());
        assert_eq!(cal.pop_due(5), Some((5, EventKind::Arrive, 9)));
    }

    #[test]
    fn rehome_moves_only_classes_whose_home_is_down() {
        let ring = HashRing::new(4, 64, 0xC0FFEE);
        let mk = |home: usize, key: u64| Cohort {
            edge: home,
            home_edge: home,
            title: 0,
            ring_key: key,
            members: Vec::new(),
            state: test_state(),
            n: 10,
            done: false,
        };
        let mut up = vec![true, false, true, true];
        // Home up: never moves, whatever the ring says.
        let mut c0 = mk(0, 0xDEAD);
        assert_eq!(rehome(&mut c0, &up, &ring), 0);
        assert_eq!(c0.edge, 0);
        // Home down: moves to a live edge, counting every member.
        let mut c1 = mk(1, 0xBEEF);
        assert_eq!(rehome(&mut c1, &up, &ring), 10);
        assert_ne!(c1.edge, 1);
        assert!(up[c1.edge]);
        // Idempotent while the edge set is unchanged.
        assert_eq!(rehome(&mut c1, &up, &ring), 0);
        // Failback: the home recovers and the class moves straight
        // back (one counted move).
        up[1] = true;
        assert_eq!(rehome(&mut c1, &up, &ring), 10);
        assert_eq!(c1.edge, 1);
        // All edges down: parked in place, no move counted.
        let all_down = vec![false; 4];
        let mut c2 = mk(2, 0xF00D);
        assert_eq!(rehome(&mut c2, &all_down, &ring), 0);
        assert_eq!(c2.edge, 2);
    }

    #[test]
    fn quantized_jump_lands_where_oracle_idle_ticking_would() {
        // q-at-a-time ticking from a boundary lands on the first
        // boundary at or past the target.
        assert_eq!(quantized_jump(0, 5, 4), 8);
        assert_eq!(quantized_jump(0, 4, 4), 4);
        assert_eq!(quantized_jump(8, 8, 4), 8);
        assert_eq!(quantized_jump(8, 9, 4), 12);
        assert_eq!(quantized_jump(0, 1, 1), 1);
        // Saturates rather than wrapping on u64::MAX-adjacent schedules.
        assert_eq!(quantized_jump(0, u64::MAX, 4), u64::MAX);
    }

    #[test]
    fn alias_resolution_follows_merge_chains() {
        // 3 merged into 1, 1 merged into 0: events against 3 land on 0.
        let alias = vec![0, 0, 2, 1];
        assert_eq!(resolve(&alias, 3), 0);
        assert_eq!(resolve(&alias, 1), 0);
        assert_eq!(resolve(&alias, 2), 2);
        assert_eq!(resolve(&alias, 0), 0);
    }

    fn test_state() -> CohortState {
        CohortState {
            abr: AbrController::new(0.3, 0.7),
            seg: 3,
            rung: 1,
            remaining_bytes: 0.0,
            fetch_start: 40,
            buffer_ticks: 12.0,
            fetched: 3,
            started: true,
            startup_after: 2,
            waiting: false,
            pending_request: false,
            playing: true,
            in_rebuffer: false,
            rebuffer_events: 0,
            rung_switches: 1,
            rung_sum: 2,
            delivered_bits: 9_000,
            latency_sum: 0,
            latency_max: 0,
            fault_rebuffers: 0,
            fault_rebuffer_ticks: 0,
        }
    }

    #[test]
    fn merge_combines_indistinguishable_member_groups_and_keeps_distinct_ones() {
        let g = |start, depart, count, startup| MemberGroup {
            start_tick: start,
            depart_at: depart,
            count,
            startup_ticks: startup,
        };
        let mut cohorts = vec![
            Cohort {
                edge: 0,
                home_edge: 0,
                title: 0,
                ring_key: 0,
                members: vec![g(10, None, 5, 6), g(10, Some(90), 2, 6)],
                state: test_state(),
                n: 7,
                done: false,
            },
            Cohort {
                edge: 0,
                home_edge: 0,
                title: 0,
                ring_key: 0,
                members: vec![g(10, None, 3, 6), g(10, None, 1, 8)],
                state: test_state(),
                n: 4,
                done: false,
            },
        ];
        merge_into(&mut cohorts, 0, 1);
        assert!(cohorts[1].done, "absorbed cohort becomes a tombstone");
        assert!(cohorts[1].members.is_empty());
        // (10, None, 6) merged into the existing group; (10, None, 8)
        // differs in startup latency and must stay its own group.
        assert_eq!(
            cohorts[0].members,
            vec![g(10, None, 8, 6), g(10, Some(90), 2, 6), g(10, None, 1, 8)]
        );
        assert_eq!(cohorts[0].count(), 11);
    }

    #[test]
    fn cohort_formation_groups_same_tick_arrivals_and_splits_departure_groups() {
        let m = manifest();
        let load = LoadConfig {
            sessions: 6,
            stagger_ticks: 0, // all six arrive at tick 0
            ..Default::default()
        };
        let p = TierParams::single_origin(&ServerConfig::default());
        let mut edges = build_edges(std::slice::from_ref(&m), &p);
        // Hand-build a schedule: four stayers and two churners leaving
        // at different ticks — one cohort, three member groups.
        let schedule = vec![
            (0, None),
            (0, Some(500)),
            (0, None),
            (0, Some(900)),
            (0, None),
            (0, None),
        ];
        let cohorts = form_cohorts(
            &schedule,
            &[m.segment_count()],
            &load,
            &p,
            &mut edges,
            None,
            None,
        );
        assert_eq!(
            cohorts.len(),
            1,
            "same (tick, edge) arrivals share a cohort"
        );
        assert_eq!(cohorts[0].count(), 6);
        assert_eq!(cohorts[0].members.len(), 3, "split by departure tick");
        let counts: Vec<(Option<u64>, u64)> = cohorts[0]
            .members
            .iter()
            .map(|g| (g.depart_at, g.count))
            .collect();
        assert_eq!(counts, vec![(None, 4), (Some(500), 1), (Some(900), 1)]);
        assert_eq!(edges[0].assigned, 6);
    }

    #[test]
    fn merge_sweep_collapses_converged_classes_without_changing_reports() {
        // Two staggered arrival waves converge once both are in steady
        // state; the merge sweep must collapse them and the report must
        // still match the oracle exactly.
        let m = manifest();
        let load = LoadConfig {
            sessions: 64,
            stagger_ticks: 64,
            ..Default::default()
        };
        let p = TierParams::single_origin(&ServerConfig::default());
        assert_matches_oracle(&m, &load, &p);
    }

    #[test]
    fn departures_split_groups_out_of_live_cohorts() {
        // Churned viewers leave mid-stream: every departure must fold
        // exactly its member group while the rest of the cohort keeps
        // streaming — pinned by exact equivalence with the per-session
        // oracle, including the departed count.
        let m = manifest();
        let load = LoadConfig {
            sessions: 30,
            churn: ChurnConfig {
                churn_sessions: 40,
                mean_interarrival_ticks: 40.0,
                mean_watch_ticks: 300.0,
                flash_sessions: 0,
                flash_at_tick: 0,
                flash_ramp_ticks: 0,
            },
            ..Default::default()
        };
        let p = TierParams::tier(&EdgeTierConfig::default());
        let run = run_cohorts(std::slice::from_ref(&m), &load, &p);
        assert!(run.report.departed > 0, "config must actually churn");
        assert_matches_oracle(&m, &load, &p);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// VOD through an edge tier: the cohort engine is
        /// report-identical to the retired per-session quantum engine
        /// for arbitrary populations, stagger, quanta, sharding
        /// (including the consistent-hash ring, fault-free), prewarm,
        /// churn, and flash crowds (unbounded caches).
        #[test]
        fn cohorts_match_oracle_on_vod_tiers(
            sessions in 0usize..48,
            stagger in 0u64..1500,
            seed in any::<u64>(),
            quantum in 1u64..9,
            edges in 1usize..5,
            shard_mode in 0usize..3,
            prewarm in any::<bool>(),
            churn_sessions in 0usize..24,
            interarrival in 1.0f64..200.0,
            watch in 0.0f64..2000.0,
            flash_sessions in 0usize..24,
            flash_at in 0u64..3000,
            flash_ramp in 0u64..500,
            origin_capacity in 500.0f64..8000.0,
        ) {
            let m = manifest();
            let load = LoadConfig {
                sessions,
                stagger_ticks: stagger,
                seed,
                tick_quantum: quantum,
                churn: ChurnConfig {
                    churn_sessions,
                    mean_interarrival_ticks: interarrival,
                    mean_watch_ticks: watch,
                    flash_sessions,
                    flash_at_tick: flash_at,
                    flash_ramp_ticks: flash_ramp,
                },
                ..Default::default()
            };
            let tier = EdgeTierConfig {
                edges,
                sharding: match shard_mode {
                    0 => Sharding::RoundRobin,
                    1 => Sharding::Hash,
                    _ => Sharding::Ring,
                },
                prewarm,
                origin_capacity_bytes_per_tick: origin_capacity,
                ..Default::default()
            };
            assert_matches_oracle(&m, &load, &TierParams::tier(&tier));
        }

        /// Live delivery: publish gating, DVR-window expiry, window
        /// skips, and latency accounting all match the oracle.
        #[test]
        fn cohorts_match_oracle_on_live_streams(
            sessions in 1usize..40,
            stagger in 0u64..1200,
            seed in any::<u64>(),
            quantum in 1u64..9,
            edges in 1usize..4,
            dvr in 2u64..12,
            head_start in 0u64..5,
            dvr_start in any::<bool>(),
            startup_segments in 1usize..4,
            churn_sessions in 0usize..16,
            interarrival in 1.0f64..120.0,
            watch in 0.0f64..1500.0,
        ) {
            let m = manifest();
            let load = LoadConfig {
                sessions,
                stagger_ticks: stagger,
                seed,
                tick_quantum: quantum,
                startup_segments,
                churn: ChurnConfig {
                    churn_sessions,
                    mean_interarrival_ticks: interarrival,
                    mean_watch_ticks: watch,
                    flash_sessions: 0,
                    flash_at_tick: 0,
                    flash_ramp_ticks: 0,
                },
                ..Default::default()
            };
            let live = LiveConfig {
                dvr_window_segments: dvr,
                head_start_segments: head_start,
                join: if dvr_start { JoinMode::DvrStart } else { JoinMode::LiveEdge },
                ..Default::default()
            };
            let tier = EdgeTierConfig { edges, ..Default::default() };
            let p = TierParams::tier(&tier).with_live(&live, &m);
            assert_matches_oracle(&m, &load, &p);
        }

        /// Degenerate tiers (zero capacity, origin outages) terminate
        /// identically on both engines — the stasis detector agrees.
        #[test]
        fn cohorts_match_oracle_under_origin_outage(
            sessions in 1usize..24,
            stagger in 0u64..600,
            seed in any::<u64>(),
            down_after in 0u64..400,
        ) {
            let m = manifest();
            let load = LoadConfig {
                sessions,
                stagger_ticks: stagger,
                seed,
                ..Default::default()
            };
            let tier = EdgeTierConfig {
                prewarm: false,
                origin_down_after: Some(down_after),
                ..Default::default()
            };
            assert_matches_oracle(&m, &load, &TierParams::tier(&tier));
        }
    }
}
