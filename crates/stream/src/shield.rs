//! The shield (mid-tier) cache layer and frequency-based cache
//! admission.
//!
//! A flat edge tier pays one origin fill *per edge* per object: 64 cold
//! edges cross the origin link 64 times for the same segment. Real CDNs
//! put a small regional tier — "shield" or "parent" caches — between
//! edges and origin so each object crosses the origin link once per
//! *shield* instead, and edge misses fan in over cheap regional links.
//! This module adds that tier to both delivery paths:
//!
//! * [`ShieldCache`] is the *live* path: an [`crate::edge::EdgeCache`]
//!   miss calls [`ShieldCache::ensure`] before filling, so the origin
//!   sees at most one fetch per (object, generation) across all child
//!   edges ([`crate::edge::EdgeCache::fetch_through_shield`]).
//! * [`SimShield`] is the *fluid* counterpart: the calendar engine
//!   drains edge fills from their shield's cache at the shield's
//!   downlink rate, and shield misses coalesce into origin fills that
//!   share the origin uplink.
//!
//! The second half of the module is cache *admission*. An LRU admits
//! everything, so a long tail of one-hit wonders flushes the hot head
//! of a Zipf catalog out of a small cache. [`AdmissionPolicy::TinyLfu`]
//! gates inserts on a [`FreqSketch`] — a 4-bit count-min sketch with
//! periodic halving (an aging window): a candidate is admitted only if
//! its estimated request frequency beats the would-be LRU victim's.
//! Admit-always remains the default and is property-pinned
//! bit-identical to the pre-admission engine.

use crate::edge::{EdgeStats, FillTable, Lru};
use crate::ladder::Manifest;
use netstack::fetch::{fetch, ContentServer, FetchError};
use netstack::link::LinkConfig;
use netstack::tcplite::TcpConfig;
use signal::rng::splitmix64;
use std::collections::BTreeMap;

/// The fluid engine's object key: `(title, rung, segment)`. Title 0 is
/// the single-title degenerate case, so pre-catalog keys `(rung, seg)`
/// map to `(0, rung, seg)` with identical `BTreeMap` ordering.
pub(crate) type ObjKey = (u32, u32, u32);

/// One canonical 64-bit hash of an [`ObjKey`] for sketch indexing.
pub(crate) fn obj_key_hash(key: ObjKey) -> u64 {
    splitmix64((u64::from(key.0) << 42) ^ (u64::from(key.1) << 21) ^ u64::from(key.2))
}

/// A 4-bit count-min frequency sketch with periodic halving — the
/// frequency memory behind [`AdmissionPolicy::TinyLfu`].
///
/// `hashes` counters (one per hash function) are bumped per recorded
/// key, saturating at 15; the estimate is their minimum, which
/// over-counts (hash collisions only ever *add*) but never
/// under-counts — the count-min upper-bound property the test suite
/// pins. Every `halve_every` recorded requests all counters are halved
/// in place, so the sketch tracks a sliding frequency window instead of
/// all of history (a title that was hot yesterday decays today).
#[derive(Debug, Clone)]
pub struct FreqSketch {
    /// Two 4-bit counters per byte.
    nibbles: Vec<u8>,
    mask: u64,
    hashes: u32,
    halve_every: u64,
    recorded: u64,
    seed: u64,
}

impl FreqSketch {
    /// A sketch with `slots` counters (rounded up to a power of two,
    /// minimum 2), `hashes` hash functions, halved every `halve_every`
    /// recorded requests.
    #[must_use]
    pub fn new(slots: usize, hashes: u32, halve_every: u64, seed: u64) -> Self {
        let slots = slots.next_power_of_two().max(2);
        Self {
            nibbles: vec![0; slots / 2],
            mask: slots as u64 - 1,
            hashes: hashes.max(1),
            halve_every: halve_every.max(1),
            recorded: 0,
            seed,
        }
    }

    fn slot(&self, key: u64, i: u32) -> usize {
        let salted = key.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (splitmix64(self.seed ^ salted) & self.mask) as usize
    }

    fn counter(&self, slot: usize) -> u8 {
        (self.nibbles[slot / 2] >> ((slot & 1) * 4)) & 0xF
    }

    fn bump(&mut self, slot: usize) {
        let shift = (slot & 1) * 4;
        let byte = &mut self.nibbles[slot / 2];
        let v = (*byte >> shift) & 0xF;
        if v < 15 {
            *byte = (*byte & !(0xF << shift)) | ((v + 1) << shift);
        }
    }

    /// Records one request for `key`.
    pub fn record(&mut self, key: u64) {
        for i in 0..self.hashes {
            let slot = self.slot(key, i);
            self.bump(slot);
        }
        self.recorded += 1;
        if self.recorded % self.halve_every == 0 {
            self.halve();
        }
    }

    /// Records up to 16 requests for `key` in one call — the counted
    /// form for cohort engines. Counters saturate at 15, so recording
    /// more than 16 from one cohort cannot change any estimate; capping
    /// bounds the cost of million-session cohorts.
    pub fn record_n(&mut self, key: u64, n: u64) {
        for _ in 0..n.min(16) {
            self.record(key);
        }
    }

    /// Halves every counter in place (the aging window).
    fn halve(&mut self) {
        for byte in &mut self.nibbles {
            *byte = (*byte >> 1) & 0x77;
        }
    }

    /// The frequency estimate for `key`: the minimum across its
    /// counters. Never an under-count of requests recorded since the
    /// last halving (saturated at 15).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u8 {
        (0..self.hashes)
            .map(|i| self.counter(self.slot(key, i)))
            .min()
            .unwrap_or(0)
    }

    /// Requests recorded so far (halvings included in the count's
    /// history; this is the halving clock).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// Sizing for a [`FreqSketch`]-backed TinyLFU admission filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TinyLfuConfig {
    /// Counters in the sketch (rounded up to a power of two).
    pub counters: usize,
    /// Hash functions per key.
    pub hashes: u32,
    /// Halve all counters every this many recorded requests.
    pub halve_every: u64,
    /// Sketch hash seed.
    pub seed: u64,
}

impl Default for TinyLfuConfig {
    /// 16Ki 4-bit counters, 4 hashes, halved every 16Ki requests.
    fn default() -> Self {
        Self {
            counters: 1 << 14,
            hashes: 4,
            halve_every: 1 << 14,
            seed: 0x7E11_F00D,
        }
    }
}

/// How a cache decides whether a filled object is worth an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdmissionPolicy {
    /// Insert everything (classic LRU). The default, and the
    /// bit-identical legacy behavior.
    #[default]
    AdmitAll,
    /// TinyLFU: admit an object that would force an eviction only when
    /// its sketch-estimated frequency is at least the would-be
    /// victim's. Objects that fit without evicting are always admitted.
    TinyLfu(TinyLfuConfig),
}

impl AdmissionPolicy {
    /// The per-cache runtime state for this policy — `None` for
    /// admit-always, so the legacy path carries no sketch at all.
    #[must_use]
    pub(crate) fn build(&self) -> Option<Admission> {
        match *self {
            AdmissionPolicy::AdmitAll => None,
            AdmissionPolicy::TinyLfu(cfg) => Some(Admission {
                sketch: FreqSketch::new(cfg.counters, cfg.hashes, cfg.halve_every, cfg.seed),
            }),
        }
    }
}

/// Per-cache TinyLFU state: the frequency sketch plus the admit rule.
#[derive(Debug, Clone)]
pub(crate) struct Admission {
    sketch: FreqSketch,
}

impl Admission {
    /// Records `n` requests for `key` (every request feeds the sketch,
    /// hits and misses alike — frequency is about demand, not misses).
    pub(crate) fn record(&mut self, key: u64, n: u64) {
        self.sketch.record_n(key, n);
    }

    /// Whether `candidate` is worth evicting `victim` for.
    pub(crate) fn admits(&self, candidate: u64, victim: u64) -> bool {
        self.sketch.estimate(candidate) >= self.sketch.estimate(victim)
    }
}

/// Inserts `key` into `lru` subject to the cache's admission policy.
/// Returns whether the object was cached: under admit-always (`adm` is
/// `None`) this is a plain insert; under TinyLFU an insert that would
/// force an eviction is dropped when the candidate's estimated
/// frequency loses to the current LRU victim's. Re-inserts of an
/// already-cached key and inserts that fit without evicting always
/// land.
pub(crate) fn admit_insert(
    lru: &mut Lru<ObjKey>,
    adm: &Option<Admission>,
    key: ObjKey,
    bytes: usize,
) -> bool {
    if let Some(a) = adm {
        if !lru.contains(&key) && lru.would_evict(bytes) {
            if let Some((victim, _)) = lru.peek_victim() {
                if !a.admits(obj_key_hash(key), obj_key_hash(*victim)) {
                    return false;
                }
            }
        }
    }
    lru.insert(key, bytes);
    true
}

/// The tier-aware rollup of [`EdgeStats`]: per-tier element-wise sums
/// plus origin-crossing accounting, so offload is computed one way
/// everywhere instead of ad hoc in exp bins.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierStats {
    /// Sum over the edge tier.
    pub edges: EdgeStats,
    /// Sum over the shield tier (all-zero in a flat topology).
    pub shields: EdgeStats,
    /// Requests that crossed all the way to the true origin: the
    /// deepest tier's fill starts.
    pub origin_hits: u64,
    /// Whether a shield tier exists — decides which tier's
    /// `origin_bytes` count as true origin crossings.
    pub tiered: bool,
}

impl TierStats {
    /// Rolls up per-cache stats. An empty `per_shield` slice is the
    /// flat topology: edges fill straight from the origin.
    #[must_use]
    pub fn rollup(per_edge: &[EdgeStats], per_shield: &[EdgeStats]) -> Self {
        let edges = EdgeStats::merged_all(per_edge);
        let shields = EdgeStats::merged_all(per_shield);
        let tiered = !per_shield.is_empty();
        Self {
            edges,
            shields,
            origin_hits: if tiered { shields.misses } else { edges.misses },
            tiered,
        }
    }

    /// Bytes that actually crossed the true origin link.
    #[must_use]
    pub fn origin_bytes(&self) -> u64 {
        if self.tiered {
            self.shields.origin_bytes
        } else {
            self.edges.origin_bytes
        }
    }

    /// Fraction of viewer-served bytes that never crossed the true
    /// origin link — the offload the whole hierarchy exists to provide.
    /// With shields, edge `origin_bytes` only crossed a *regional*
    /// link, so offload is measured against the shields' origin pulls.
    #[must_use]
    pub fn origin_offload(&self) -> f64 {
        if self.edges.served_bytes == 0 {
            0.0
        } else {
            1.0 - self.origin_bytes() as f64 / self.edges.served_bytes as f64
        }
    }

    /// Viewer-facing hit rate (the edge tier's — viewers only ever see
    /// edges).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.edges.hit_rate()
    }
}

/// One shield cache in the fluid simulator: the same LRU +
/// coalescing-fill machinery as the fluid edge, one level up. Edge
/// fills drain from the shield's cache; shield misses become origin
/// fills whose payload is the object's remaining origin-leg bytes.
#[derive(Debug, Clone)]
pub(crate) struct SimShield {
    pub(crate) lru: Lru<ObjKey>,
    pub(crate) fills: FillTable<ObjKey, f64>,
    pub(crate) stats: EdgeStats,
    /// Child edges statically assigned to this shield.
    pub(crate) assigned: usize,
}

impl SimShield {
    /// One edge fill lands on this shield: a cached object is a hit, a
    /// cold one starts (or joins) an origin fill.
    pub(crate) fn request(&mut self, key: ObjKey, bytes: f64) {
        if self.lru.touch(&key) {
            self.stats.hits += 1;
        } else if self.fills.request(key, 0, || bytes) {
            self.stats.misses += 1;
        } else {
            self.stats.coalesced += 1;
        }
    }
}

/// The shield an edge homes to with every shield up: child edges are
/// split into `shields` contiguous, near-equal groups.
pub(crate) fn shield_home(edge: usize, edges: usize, shields: usize) -> usize {
    edge * shields / edges
}

/// Builds the fluid shield tier: `count` shields, optionally prewarmed
/// with every title (as far as capacity allows), with child-edge
/// assignment counts filled in.
pub(crate) fn build_shields(
    titles: &[Manifest],
    count: usize,
    cache_capacity_bytes: usize,
    prewarm: bool,
    edges: usize,
) -> Vec<SimShield> {
    let mut shields: Vec<SimShield> = (0..count)
        .map(|_| SimShield {
            lru: Lru::new(cache_capacity_bytes),
            fills: FillTable::new(),
            stats: EdgeStats::default(),
            assigned: 0,
        })
        .collect();
    if prewarm {
        for sh in &mut shields {
            for (ti, m) in titles.iter().enumerate() {
                for (ri, rung) in m.rungs.iter().enumerate() {
                    for (si, seg) in rung.segments.iter().enumerate() {
                        sh.lru.insert((ti as u32, ri as u32, si as u32), seg.bytes);
                    }
                }
            }
            sh.stats.evictions = sh.lru.evictions();
        }
    }
    if count > 0 {
        for e in 0..edges {
            shields[shield_home(e, edges, count)].assigned += 1;
        }
    }
    shields
}

/// Configuration of one live shield cache.
#[derive(Debug, Clone)]
pub struct ShieldConfig {
    /// Cache budget in bytes.
    pub cache_capacity_bytes: usize,
    /// Transport used on the shield→origin fill path.
    pub origin_tcp: TcpConfig,
    /// The shield's origin link (regional backbone: typically cleaner
    /// and fatter than an edge's).
    pub origin_link: LinkConfig,
    /// Seed for the origin link's loss process (advanced per fill).
    pub origin_seed: u64,
    /// Freshness window for mutable objects, in ticks (see
    /// [`crate::edge::EdgeConfig::mutable_ttl_ticks`]).
    pub mutable_ttl_ticks: u64,
    /// Retry discipline for transport-level origin-fill failures.
    pub retry: crate::fault::RetryPolicy,
}

impl Default for ShieldConfig {
    /// 8 MiB cache over a clean default link; mutable objects
    /// revalidate on every request; origin fills are not retried.
    fn default() -> Self {
        Self {
            cache_capacity_bytes: 8 << 20,
            origin_tcp: TcpConfig::default(),
            origin_link: LinkConfig::default(),
            origin_seed: 0x5111E1D,
            mutable_ttl_ticks: 0,
            retry: crate::fault::RetryPolicy::default(),
        }
    }
}

/// One live shield cache: a bounded LRU of named objects filled from
/// the origin on demand, serving *edges* (not viewers) from its local
/// store. Child edges call [`ShieldCache::ensure`] on a miss and then
/// fill from [`ShieldCache::server`] over their own origin link; the
/// [`FillTable`] ledger records one started fill per (object,
/// generation) however many edges ask.
#[derive(Debug, Clone)]
pub struct ShieldCache {
    config: ShieldConfig,
    lru: Lru<String>,
    store: ContentServer,
    fills: FillTable<String, ()>,
    fetched_at: BTreeMap<String, u64>,
    up: bool,
    origin_up: bool,
    fill_count: u64,
    stats: EdgeStats,
}

impl ShieldCache {
    /// An empty (cold) shield.
    #[must_use]
    pub fn new(config: ShieldConfig) -> Self {
        Self {
            lru: Lru::new(config.cache_capacity_bytes),
            config,
            store: ContentServer::new(),
            fills: FillTable::new(),
            fetched_at: BTreeMap::new(),
            up: true,
            origin_up: true,
            fill_count: 0,
            stats: EdgeStats::default(),
        }
    }

    /// Simulates a shield-process crash (or recovery): while down,
    /// every `ensure` fails and child edges fall back to stale copies
    /// or their failover shield.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Whether the shield process is up.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Simulates an origin outage behind the shield: warm objects keep
    /// serving, shield misses fail.
    pub fn set_origin_up(&mut self, up: bool) {
        self.origin_up = up;
    }

    /// What this shield has observed so far.
    #[must_use]
    pub fn stats(&self) -> &EdgeStats {
        &self.stats
    }

    /// The `(started, joined, failed)` origin-fill ledger.
    #[must_use]
    pub fn fill_ledger(&self) -> (u64, u64, u64) {
        (
            self.fills.started(),
            self.fills.joined(),
            self.fills.failed(),
        )
    }

    /// Objects currently cached.
    #[must_use]
    pub fn cached_objects(&self) -> usize {
        self.lru.len()
    }

    /// Bytes currently cached.
    #[must_use]
    pub fn cached_bytes(&self) -> usize {
        self.lru.held_bytes()
    }

    /// The shield's local store — the "origin" its child edges fill
    /// from after a successful [`ShieldCache::ensure`].
    #[must_use]
    pub fn server(&self) -> &ContentServer {
        &self.store
    }

    /// Copies `names` from the origin into the cache instantly
    /// (pre-positioning on the parent tier).
    pub fn prewarm(&mut self, origin: &ContentServer, names: &[String]) {
        for name in names {
            if let Some(data) = origin.get(name) {
                self.admit(name.clone(), data.to_vec());
            }
        }
    }

    /// Accounts bytes a child edge pulled from this shield.
    pub(crate) fn note_served(&mut self, bytes: u64) {
        self.stats.served_bytes += bytes;
    }

    /// Ensures an *immutable* object is present in the shield's store,
    /// filling from `origin` on a miss. Returns the origin-leg ticks
    /// (0 on a shield hit) and, for an object larger than the shield's
    /// cache, a pass-through server to fill from instead.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the shield is down, or on a miss
    /// with the origin unreachable or the fill failing.
    pub fn ensure(
        &mut self,
        origin: &ContentServer,
        name: &str,
    ) -> Result<(u64, Option<ContentServer>), FetchError> {
        if !self.up {
            return Err(FetchError::Server("shield-unreachable".to_string()));
        }
        if self.lru.touch(&name.to_string()) {
            self.stats.hits += 1;
            return Ok((0, None));
        }
        if !self.origin_up {
            return Err(FetchError::Server("origin-unreachable".to_string()));
        }
        self.fill(origin, name, None)
    }

    /// The mutable-object counterpart of [`ShieldCache::ensure`]: a
    /// cached copy younger than the TTL is a hit, a stale one is
    /// revalidated against the origin, and a stale copy is still
    /// served when the origin is down (stale-if-error).
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the shield is down, or the object
    /// is wholly uncached with the origin unreachable or failing.
    pub fn ensure_mutable(
        &mut self,
        origin: &ContentServer,
        name: &str,
        now: u64,
    ) -> Result<(u64, Option<ContentServer>), FetchError> {
        if !self.up {
            return Err(FetchError::Server("shield-unreachable".to_string()));
        }
        let cached = self.lru.touch(&name.to_string());
        let fresh = cached
            && self
                .fetched_at
                .get(name)
                .is_some_and(|&at| now < at.saturating_add(self.config.mutable_ttl_ticks));
        if fresh || (cached && !self.origin_up) {
            self.stats.hits += 1;
            return Ok((0, None));
        }
        if !self.origin_up {
            return Err(FetchError::Server("origin-unreachable".to_string()));
        }
        if cached {
            self.stats.revalidations += 1;
        }
        self.fill(origin, name, Some(now))
    }

    /// Inserts one object, evicting as needed (LRU index and local
    /// store stay consistent).
    fn admit(&mut self, name: String, data: Vec<u8>) {
        let len = data.len();
        let cacheable = len <= self.config.cache_capacity_bytes;
        for victim in self.lru.insert(name.clone(), len) {
            self.store.remove(&victim);
        }
        self.stats.evictions = self.lru.evictions();
        if cacheable {
            self.store.publish(name, data);
        }
    }

    /// One origin fill, mirroring the edge's retry discipline; the
    /// [`FillTable`] slot for `(name, 0)` is held for the duration so
    /// the coalescing ledger stays one-fill-per-generation even though
    /// the live path is serial.
    fn fill(
        &mut self,
        origin: &ContentServer,
        name: &str,
        stamp: Option<u64>,
    ) -> Result<(u64, Option<ContentServer>), FetchError> {
        let key = name.to_string();
        self.fills.request(key.clone(), 0, || ());
        let mut backoff_ticks = 0u64;
        let mut failures = 0u32;
        let fill = loop {
            let fill_seed = self.config.origin_seed.wrapping_add(self.fill_count);
            self.fill_count += 1;
            match fetch(
                origin,
                name,
                self.config.origin_tcp,
                self.config.origin_link,
                fill_seed,
            ) {
                Ok(fill) => break fill,
                Err(e @ FetchError::Transport(_)) => {
                    failures += 1;
                    match self.config.retry.backoff_before(failures) {
                        Some(wait) => backoff_ticks += wait,
                        None => {
                            self.fills.fail(&key, 0);
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    self.fills.fail(&key, 0);
                    return Err(e);
                }
            }
        };
        self.fills.complete(&key, 0);
        self.stats.misses += 1;
        self.stats.origin_bytes += fill.data.len() as u64;
        let ticks = fill.ticks + backoff_ticks;
        if fill.data.len() <= self.config.cache_capacity_bytes {
            self.admit(key.clone(), fill.data);
            if let Some(now) = stamp {
                self.fetched_at.insert(key, now);
            }
            Ok((ticks, None))
        } else {
            // Serve-through without caching.
            let mut tmp = ContentServer::new();
            tmp.publish(name, fill.data);
            Ok((ticks, Some(tmp)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_estimate_is_an_upper_bound() {
        let mut s = FreqSketch::new(256, 4, u64::MAX, 1);
        for i in 0..40u64 {
            let key = splitmix64(i);
            for _ in 0..(i % 7) {
                s.record(key);
            }
        }
        for i in 0..40u64 {
            let key = splitmix64(i);
            let true_count = (i % 7).min(15) as u8;
            assert!(
                s.estimate(key) >= true_count,
                "key {i}: estimate {} < true {true_count}",
                s.estimate(key)
            );
        }
    }

    #[test]
    fn sketch_counters_saturate_at_fifteen() {
        let mut s = FreqSketch::new(64, 2, u64::MAX, 2);
        for _ in 0..100 {
            s.record(42);
        }
        assert_eq!(s.estimate(42), 15);
    }

    #[test]
    fn sketch_halving_preserves_relative_order() {
        // Satellite: on a fixed stream, halving keeps hot keys above
        // cold keys.
        let mut s = FreqSketch::new(1 << 12, 4, u64::MAX, 3);
        let hot = splitmix64(1000);
        let warm = splitmix64(2000);
        let cold = splitmix64(3000);
        for _ in 0..12 {
            s.record(hot);
        }
        for _ in 0..6 {
            s.record(warm);
        }
        s.record(cold);
        let before = (s.estimate(hot), s.estimate(warm), s.estimate(cold));
        assert!(before.0 > before.1 && before.1 > before.2);
        s.halve();
        let after = (s.estimate(hot), s.estimate(warm), s.estimate(cold));
        assert!(after.0 > after.1 && after.1 > after.2);
        assert_eq!(after.0, before.0 / 2);
    }

    #[test]
    fn sketch_halving_clock_fires_on_schedule() {
        let mut s = FreqSketch::new(64, 1, 4, 4);
        let key = 7u64;
        for _ in 0..3 {
            s.record(key);
        }
        assert_eq!(s.estimate(key), 3);
        s.record(key); // 4th record: bump to 4, then halve to 2.
        assert_eq!(s.estimate(key), 2);
    }

    #[test]
    fn admit_all_policy_builds_no_state() {
        assert!(AdmissionPolicy::AdmitAll.build().is_none());
        assert!(AdmissionPolicy::TinyLfu(TinyLfuConfig::default())
            .build()
            .is_some());
    }

    #[test]
    fn tinylfu_rejects_cold_candidate_and_admits_hot_one() {
        let mut lru: Lru<ObjKey> = Lru::new(100);
        lru.insert((0, 0, 0), 100); // victim-to-be
        let mut adm = AdmissionPolicy::TinyLfu(TinyLfuConfig::default())
            .build()
            .expect("tinylfu builds state");
        adm.record(obj_key_hash((0, 0, 0)), 5);
        // Cold candidate loses to the warm victim: not inserted.
        assert!(!admit_insert(&mut lru, &Some(adm.clone()), (0, 0, 1), 100));
        assert!(lru.contains(&(0, 0, 0)));
        assert!(!lru.contains(&(0, 0, 1)));
        // Now make the candidate hotter than the victim: admitted.
        adm.record(obj_key_hash((0, 0, 1)), 9);
        assert!(admit_insert(&mut lru, &Some(adm), (0, 0, 1), 100));
        assert!(lru.contains(&(0, 0, 1)));
        assert!(!lru.contains(&(0, 0, 0)));
    }

    #[test]
    fn admit_insert_without_eviction_pressure_always_lands() {
        let mut lru: Lru<ObjKey> = Lru::new(300);
        lru.insert((0, 0, 0), 100);
        let adm = AdmissionPolicy::TinyLfu(TinyLfuConfig::default()).build();
        // Fits without evicting: admitted despite zero frequency.
        assert!(admit_insert(&mut lru, &adm, (0, 0, 1), 100));
        // Admit-always: no sketch, always lands.
        assert!(admit_insert(&mut lru, &None, (0, 0, 2), 100));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn tier_stats_zero_requests() {
        let t = TierStats::rollup(&[EdgeStats::default(); 4], &[]);
        assert_eq!(t.origin_hits, 0);
        assert!(!t.tiered);
        assert!((t.origin_offload() - 0.0).abs() < f64::EPSILON);
        assert!((t.hit_rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn tier_stats_all_hits_is_full_offload() {
        let edge = EdgeStats {
            hits: 10,
            served_bytes: 1000,
            ..EdgeStats::default()
        };
        let t = TierStats::rollup(&[edge, edge], &[EdgeStats::default()]);
        assert!(t.tiered);
        assert_eq!(t.origin_hits, 0);
        assert_eq!(t.edges.hits, 20);
        assert!((t.origin_offload() - 1.0).abs() < f64::EPSILON);
        assert!((t.hit_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn tier_stats_mixed_tiers_charge_origin_to_deepest() {
        let edge = EdgeStats {
            hits: 6,
            misses: 2,
            origin_bytes: 400, // regional (edge->shield) pulls
            served_bytes: 2000,
            ..EdgeStats::default()
        };
        let shield = EdgeStats {
            hits: 3,
            misses: 1,
            origin_bytes: 100, // true origin pulls
            served_bytes: 400,
            ..EdgeStats::default()
        };
        let t = TierStats::rollup(&[edge, edge], &[shield]);
        assert_eq!(t.origin_hits, 1);
        assert_eq!(t.origin_bytes(), 100);
        assert!((t.origin_offload() - (1.0 - 100.0 / 4000.0)).abs() < 1e-12);
        // Flat rollup of the same edges charges the edge pulls instead.
        let flat = TierStats::rollup(&[edge, edge], &[]);
        assert_eq!(flat.origin_hits, 4);
        assert_eq!(flat.origin_bytes(), 800);
    }

    #[test]
    fn shield_home_splits_edges_contiguously() {
        let homes: Vec<usize> = (0..8).map(|e| shield_home(e, 8, 2)).collect();
        assert_eq!(homes, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!((0..64).all(|e| shield_home(e, 64, 4) == e / 16));
    }

    #[test]
    fn shield_cache_hit_miss_and_ledger() {
        let mut origin = ContentServer::new();
        origin.publish("a", vec![1u8; 64]);
        let mut sh = ShieldCache::new(ShieldConfig::default());
        let (t0, through) = sh.ensure(&origin, "a").expect("miss fills");
        assert!(t0 > 0);
        assert!(through.is_none());
        assert_eq!(sh.stats().misses, 1);
        assert_eq!(sh.stats().origin_bytes, 64);
        let (t1, _) = sh.ensure(&origin, "a").expect("hit");
        assert_eq!(t1, 0);
        assert_eq!(sh.stats().hits, 1);
        assert_eq!(sh.fill_ledger(), (1, 0, 0));
        assert!(sh.server().get("a").is_some());
    }

    #[test]
    fn shield_down_fails_even_warm() {
        let mut origin = ContentServer::new();
        origin.publish("a", vec![1u8; 64]);
        let mut sh = ShieldCache::new(ShieldConfig::default());
        sh.ensure(&origin, "a").expect("warm it");
        sh.set_up(false);
        assert!(sh.ensure(&origin, "a").is_err());
        sh.set_up(true);
        assert!(sh.ensure(&origin, "a").is_ok());
    }

    #[test]
    fn shield_stale_if_error_serves_mutable_through_origin_outage() {
        let mut origin = ContentServer::new();
        origin.publish("m", vec![2u8; 32]);
        let mut sh = ShieldCache::new(ShieldConfig::default());
        sh.ensure_mutable(&origin, "m", 0).expect("fill");
        sh.set_origin_up(false);
        // TTL 0 means this is stale, but the origin is down: serve it.
        let (t, _) = sh
            .ensure_mutable(&origin, "m", 100)
            .expect("stale-if-error");
        assert_eq!(t, 0);
        assert_eq!(sh.stats().hits, 1);
        // An uncached object has nothing stale to serve.
        assert!(sh.ensure_mutable(&origin, "other", 100).is_err());
    }
}
