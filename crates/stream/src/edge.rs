//! The edge-cache delivery tier: CDN-style caches in front of the
//! origin.
//!
//! PR 3's delivery path pulled every segment from one origin over one
//! uplink, so capacity collapsed past ~1000 sessions. This module adds
//! the layer real streaming systems use to move that knee: N edge
//! caches, each with a bounded LRU segment cache, request coalescing
//! (concurrent misses for the same object trigger one origin fill), and
//! cache-fill over the edge's own — possibly lossy — origin link.
//!
//! Two consumers share these types:
//!
//! * [`EdgeCache`] is the *live* path: a viewer session fetches through
//!   it transparently ([`crate::session::run_session_via_edge`]); hits
//!   are served from the edge's local store over the access link alone,
//!   misses add a full origin fetch over the edge's origin link.
//! * [`EdgeTierConfig`] parameterises the *fluid* many-session
//!   simulator ([`crate::serve::simulate_edge_load`]), which shards
//!   thousands of sessions across edges and measures how the capacity
//!   knee scales with edge count.

use std::collections::BTreeMap;

use netstack::fetch::{fetch, ContentServer, FetchError};
use netstack::link::LinkConfig;
use netstack::tcplite::TcpConfig;

/// A bounded, byte-budgeted LRU index. The cache tracks sizes and
/// recency; the bytes themselves live wherever the owner keeps them
/// (an internal [`ContentServer`] for the live edge, the manifest for
/// the fluid simulator).
#[derive(Debug, Clone, Default)]
pub struct Lru<K: Ord + Clone> {
    capacity_bytes: usize,
    held_bytes: usize,
    seq: u64,
    entries: BTreeMap<K, (usize, u64)>,
    evictions: u64,
}

impl<K: Ord + Clone> Lru<K> {
    /// An empty cache holding at most `capacity_bytes`.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            held_bytes: 0,
            seq: 0,
            entries: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// An effectively unbounded cache (the single-origin degenerate
    /// case: the "edge" *is* the origin and holds everything).
    #[must_use]
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Whether `key` is cached, without touching recency.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Marks `key` most-recently-used; `false` if it is not cached.
    pub fn touch(&mut self, key: &K) -> bool {
        self.seq += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.1 = self.seq;
                true
            }
            None => false,
        }
    }

    /// Inserts `key`, evicting least-recently-used entries until it
    /// fits. Returns the evicted keys. An object larger than the whole
    /// cache is not inserted (the caller should pass it through) — and
    /// any stale entry under the same key is dropped and reported
    /// evicted, so the cache never keeps serving an outdated version it
    /// just refused to replace.
    pub fn insert(&mut self, key: K, bytes: usize) -> Vec<K> {
        if bytes > self.capacity_bytes {
            let mut evicted = Vec::new();
            if let Some((sz, _)) = self.entries.remove(&key) {
                self.held_bytes -= sz;
                self.evictions += 1;
                evicted.push(key);
            }
            return evicted;
        }
        self.seq += 1;
        if let Some(old) = self.entries.insert(key, (bytes, self.seq)) {
            self.held_bytes -= old.0;
        }
        self.held_bytes += bytes;
        let mut evicted = Vec::new();
        while self.held_bytes > self.capacity_bytes {
            // Deterministic: seq values are unique, so the LRU victim is
            // unambiguous.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("over capacity implies non-empty");
            let (sz, _) = self.entries.remove(&victim).expect("victim exists");
            self.held_bytes -= sz;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Bytes currently held.
    #[must_use]
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Cached objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// What one edge observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that started an origin fill.
    pub misses: u64,
    /// Requests that joined an in-flight fill instead of starting a
    /// second one (fluid simulator only — the live path is serial).
    pub coalesced: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Bytes pulled from the origin.
    pub origin_bytes: u64,
    /// Bytes served to viewers.
    pub served_bytes: u64,
}

impl EdgeStats {
    /// Fraction of requests answered without a new origin fill
    /// (coalesced waiters count as offloaded: one fill fed them all).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }

    /// Fraction of served bytes that never crossed the origin link —
    /// the offload a CDN tier exists to provide.
    #[must_use]
    pub fn origin_offload(&self) -> f64 {
        if self.served_bytes == 0 {
            0.0
        } else {
            1.0 - self.origin_bytes as f64 / self.served_bytes as f64
        }
    }

    /// Element-wise sum, for tier-level aggregates.
    #[must_use]
    pub fn merged(&self, other: &EdgeStats) -> EdgeStats {
        EdgeStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            coalesced: self.coalesced + other.coalesced,
            evictions: self.evictions + other.evictions,
            origin_bytes: self.origin_bytes + other.origin_bytes,
            served_bytes: self.served_bytes + other.served_bytes,
        }
    }
}

/// Configuration of one live edge cache.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Segment-cache budget in bytes.
    pub cache_capacity_bytes: usize,
    /// Transport used on the edge→origin fill path.
    pub origin_tcp: TcpConfig,
    /// The edge's own origin link (typically better than an access
    /// link, but still lossy).
    pub origin_link: LinkConfig,
    /// Seed for the origin link's loss process (advanced per fill so
    /// repeated fills see fresh loss draws, deterministically).
    pub origin_seed: u64,
}

impl Default for EdgeConfig {
    /// 1 MiB cache over a clean default link.
    fn default() -> Self {
        Self {
            cache_capacity_bytes: 1 << 20,
            origin_tcp: TcpConfig::default(),
            origin_link: LinkConfig::default(),
            origin_seed: 0xED6E,
        }
    }
}

/// One live edge cache: a bounded LRU of named objects, filled from the
/// origin on demand and serving viewers from its local store.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    config: EdgeConfig,
    lru: Lru<String>,
    store: ContentServer,
    origin_up: bool,
    fills: u64,
    stats: EdgeStats,
}

impl EdgeCache {
    /// An empty (cold) edge.
    #[must_use]
    pub fn new(config: EdgeConfig) -> Self {
        Self {
            lru: Lru::new(config.cache_capacity_bytes),
            config,
            store: ContentServer::new(),
            origin_up: true,
            fills: 0,
            stats: EdgeStats::default(),
        }
    }

    /// Simulates an origin outage (or recovery): while down, misses
    /// fail, but warm objects keep serving.
    pub fn set_origin_up(&mut self, up: bool) {
        self.origin_up = up;
    }

    /// What this edge has observed so far.
    #[must_use]
    pub fn stats(&self) -> &EdgeStats {
        &self.stats
    }

    /// Objects currently cached.
    #[must_use]
    pub fn cached_objects(&self) -> usize {
        self.lru.len()
    }

    /// Bytes currently cached.
    #[must_use]
    pub fn cached_bytes(&self) -> usize {
        self.lru.held_bytes()
    }

    /// Copies `names` from the origin into the cache instantly (content
    /// pre-positioning, the CDN's push model). Objects missing from the
    /// origin are skipped; objects larger than the cache are skipped.
    pub fn prewarm(&mut self, origin: &ContentServer, names: &[String]) {
        for name in names {
            if let Some(data) = origin.get(name) {
                self.admit(name.clone(), data.to_vec());
            }
        }
    }

    /// Inserts one object, evicting as needed (both the LRU index and
    /// the local store stay consistent). An object larger than the
    /// whole cache is not stored — and any stale cached version of it
    /// is dropped rather than left to serve as a phantom hit.
    fn admit(&mut self, name: String, data: Vec<u8>) {
        let len = data.len();
        let cacheable = len <= self.config.cache_capacity_bytes;
        for victim in self.lru.insert(name.clone(), len) {
            self.store.remove(&victim);
        }
        self.stats.evictions = self.lru.evictions();
        if cacheable {
            self.store.publish(name, data);
        }
    }

    /// Fetches `name` through this edge: a hit is served from the local
    /// store over the viewer's access link alone; a miss first fills
    /// from `origin` over the edge's origin link, caches the object,
    /// then serves it. Returns the bytes and the total simulated ticks
    /// (fill + access leg).
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the viewer leg fails, when a miss
    /// cannot be filled (transport failure or missing object), or when
    /// the origin is down and the object is not cached.
    pub fn fetch_through(
        &mut self,
        origin: &ContentServer,
        name: &str,
        viewer_tcp: TcpConfig,
        viewer_link: LinkConfig,
        viewer_seed: u64,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let key = name.to_string();
        let mut fill_ticks = 0u64;
        let mut passthrough: Option<ContentServer> = None;
        if self.lru.touch(&key) {
            self.stats.hits += 1;
        } else {
            if !self.origin_up {
                return Err(FetchError::Server("origin-unreachable".to_string()));
            }
            // The attempt counter advances even when the fill fails, so
            // a retry after a transport timeout sees fresh (still
            // deterministic) loss draws instead of replaying the exact
            // failure forever.
            let fill_seed = self.config.origin_seed.wrapping_add(self.fills);
            self.fills += 1;
            let fill = fetch(
                origin,
                name,
                self.config.origin_tcp,
                self.config.origin_link,
                fill_seed,
            )?;
            self.stats.misses += 1;
            self.stats.origin_bytes += fill.data.len() as u64;
            fill_ticks = fill.ticks;
            if fill.data.len() <= self.config.cache_capacity_bytes {
                self.admit(key, fill.data);
            } else {
                // Serve-through without caching.
                let mut tmp = ContentServer::new();
                tmp.publish(name, fill.data);
                passthrough = Some(tmp);
            }
        }
        let source = passthrough.as_ref().unwrap_or(&self.store);
        let r = fetch(source, name, viewer_tcp, viewer_link, viewer_seed)?;
        self.stats.served_bytes += r.data.len() as u64;
        Ok((r.data, fill_ticks + r.ticks))
    }
}

/// How the fluid simulator assigns sessions to edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Session `i` goes to edge `i % edges` (perfect balance).
    RoundRobin,
    /// Session `i` goes to `splitmix64(seed ^ i) % edges` (the
    /// imperfect balance a consistent-hash front end would give).
    Hash,
}

/// The edge tier the fluid simulator routes sessions through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeTierConfig {
    /// Edge caches in the tier.
    pub edges: usize,
    /// Per-edge segment-cache budget, bytes.
    pub cache_capacity_bytes: usize,
    /// Each edge's downlink to its viewers, bytes per tick (the PR 3
    /// single-origin uplink, now multiplied by `edges`).
    pub edge_capacity_bytes_per_tick: f64,
    /// Each viewer's access-link ceiling, bytes per tick.
    pub per_session_bytes_per_tick: f64,
    /// The origin uplink every cache fill shares, bytes per tick.
    pub origin_capacity_bytes_per_tick: f64,
    /// Session→edge assignment.
    pub sharding: Sharding,
    /// Pre-position every segment on every edge before sessions start
    /// (as far as each cache's capacity allows).
    pub prewarm: bool,
    /// Simulated origin outage: fills stop progressing at this tick.
    pub origin_down_after: Option<u64>,
}

impl Default for EdgeTierConfig {
    /// Four warm edges, each with the PR 3 single-origin uplink
    /// (4,000 bytes/tick) and an effectively unbounded cache, filled
    /// over a 4,000 byte/tick origin uplink.
    fn default() -> Self {
        Self {
            edges: 4,
            cache_capacity_bytes: usize::MAX,
            edge_capacity_bytes_per_tick: 4_000.0,
            per_session_bytes_per_tick: 100.0,
            origin_capacity_bytes_per_tick: 4_000.0,
            sharding: Sharding::RoundRobin,
            prewarm: true,
            origin_down_after: None,
        }
    }
}

/// The edge-assignment hash for [`Sharding::Hash`] — `signal`'s
/// SplitMix64 mixer, re-exported so delivery code has one canonical
/// spreading function.
pub use signal::rng::splitmix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used_within_budget() {
        let mut lru: Lru<&'static str> = Lru::new(100);
        assert!(lru.is_empty());
        assert!(lru.insert("a", 40).is_empty());
        assert!(lru.insert("b", 40).is_empty());
        assert!(lru.touch(&"a")); // b is now the LRU entry
        let evicted = lru.insert("c", 40);
        assert_eq!(evicted, vec!["b"]);
        assert!(lru.contains(&"a") && lru.contains(&"c") && !lru.contains(&"b"));
        assert_eq!(lru.held_bytes(), 80);
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn lru_rejects_objects_larger_than_itself() {
        let mut lru: Lru<u32> = Lru::new(10);
        assert!(lru.insert(1, 11).is_empty());
        assert!(!lru.contains(&1));
        assert_eq!(lru.held_bytes(), 0);
        // Growing a cached object past the budget drops the stale
        // entry instead of leaving it to serve phantom hits.
        assert!(lru.insert(1, 5).is_empty());
        assert_eq!(lru.insert(1, 11), vec![1]);
        assert!(!lru.contains(&1));
        assert_eq!(lru.held_bytes(), 0);
    }

    #[test]
    fn lru_reinsert_updates_size_without_leak() {
        let mut lru: Lru<u32> = Lru::new(100);
        lru.insert(1, 60);
        lru.insert(1, 30);
        assert_eq!(lru.held_bytes(), 30);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn edge_cache_hits_after_first_fetch() {
        let mut origin = ContentServer::new();
        origin.publish("t/seg0", vec![7u8; 800]);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let (a, cold_ticks) = edge
            .fetch_through(
                &origin,
                "t/seg0",
                TcpConfig::default(),
                LinkConfig::default(),
                1,
            )
            .unwrap();
        let (b, warm_ticks) = edge
            .fetch_through(
                &origin,
                "t/seg0",
                TcpConfig::default(),
                LinkConfig::default(),
                2,
            )
            .unwrap();
        assert_eq!(a, vec![7u8; 800]);
        assert_eq!(a, b);
        assert!(
            warm_ticks < cold_ticks,
            "hit ({warm_ticks}) must beat miss ({cold_ticks}): no origin leg"
        );
        let s = edge.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.origin_bytes, 800);
        assert_eq!(s.served_bytes, 1600);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.origin_offload() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warm_edge_survives_origin_outage() {
        let mut origin = ContentServer::new();
        origin.publish("t/seg0", vec![1u8; 300]);
        origin.publish("t/seg1", vec![2u8; 300]);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        edge.prewarm(&origin, &["t/seg0".to_string()]);
        edge.set_origin_up(false);
        // Cached object still serves.
        let (data, _) = edge
            .fetch_through(
                &origin,
                "t/seg0",
                TcpConfig::default(),
                LinkConfig::default(),
                3,
            )
            .unwrap();
        assert_eq!(data, vec![1u8; 300]);
        // Uncached object fails cleanly.
        let err = edge
            .fetch_through(
                &origin,
                "t/seg1",
                TcpConfig::default(),
                LinkConfig::default(),
                4,
            )
            .unwrap_err();
        assert_eq!(err, FetchError::Server("origin-unreachable".to_string()));
    }

    #[test]
    fn bounded_edge_evicts_and_refills() {
        let mut origin = ContentServer::new();
        origin.publish("a", vec![1u8; 600]);
        origin.publish("b", vec![2u8; 600]);
        let mut edge = EdgeCache::new(EdgeConfig {
            cache_capacity_bytes: 1_000,
            ..Default::default()
        });
        let tcp = TcpConfig::default();
        let link = LinkConfig::default();
        edge.fetch_through(&origin, "a", tcp, link, 1).unwrap();
        edge.fetch_through(&origin, "b", tcp, link, 2).unwrap(); // evicts a
        assert_eq!(edge.cached_objects(), 1);
        assert_eq!(edge.stats().evictions, 1);
        edge.fetch_through(&origin, "a", tcp, link, 3).unwrap(); // refill
        assert_eq!(edge.stats().misses, 3);
        assert_eq!(edge.stats().hits, 0);
    }

    #[test]
    fn oversized_object_passes_through_uncached() {
        let mut origin = ContentServer::new();
        origin.publish("big", vec![9u8; 5_000]);
        let mut edge = EdgeCache::new(EdgeConfig {
            cache_capacity_bytes: 1_000,
            ..Default::default()
        });
        let (data, _) = edge
            .fetch_through(
                &origin,
                "big",
                TcpConfig::default(),
                LinkConfig::default(),
                1,
            )
            .unwrap();
        assert_eq!(data.len(), 5_000);
        assert_eq!(edge.cached_objects(), 0, "oversized objects are not cached");
    }

    #[test]
    fn failed_fills_retry_with_fresh_seeds() {
        // 65% loss and a tight transport deadline: the first two fill
        // attempts (seeds 3 and 4) deterministically time out, the
        // third (seed 5) succeeds. Before the attempt counter advanced
        // on failure, every retry replayed seed 3's timeout forever.
        let mut origin = ContentServer::new();
        origin.publish("x", vec![7u8; 1500]);
        let mut edge = EdgeCache::new(EdgeConfig {
            origin_tcp: TcpConfig {
                deadline_ticks: 1_200,
                ..Default::default()
            },
            origin_link: LinkConfig::default().with_loss(0.65),
            origin_seed: 3,
            ..Default::default()
        });
        let viewer_tcp = TcpConfig::default();
        let viewer_link = LinkConfig::default();
        let mut attempts = 0;
        let data = loop {
            attempts += 1;
            assert!(attempts <= 5, "retries must see fresh loss draws");
            match edge.fetch_through(&origin, "x", viewer_tcp, viewer_link, 1) {
                Ok((data, _)) => break data,
                Err(FetchError::Transport(_)) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(data, vec![7u8; 1500]);
        assert_eq!(attempts, 3, "seeds 3 and 4 fail, 5 succeeds");
        // The successful fill cached the object.
        assert_eq!(edge.stats().hits, 0);
        edge.fetch_through(&origin, "x", viewer_tcp, viewer_link, 2)
            .unwrap();
        assert_eq!(edge.stats().hits, 1);
    }

    #[test]
    fn lossy_origin_link_still_fills_exactly() {
        let mut origin = ContentServer::new();
        origin.publish("x", (0..2000u32).map(|i| i as u8).collect());
        let mut edge = EdgeCache::new(EdgeConfig {
            origin_link: LinkConfig::default().with_loss(0.15),
            ..Default::default()
        });
        let (data, _) = edge
            .fetch_through(&origin, "x", TcpConfig::default(), LinkConfig::default(), 1)
            .unwrap();
        assert_eq!(data, (0..2000u32).map(|i| i as u8).collect::<Vec<u8>>());
    }

    #[test]
    fn stats_merge_and_rates_are_guarded() {
        let zero = EdgeStats::default();
        assert_eq!(zero.hit_rate(), 0.0);
        assert_eq!(zero.origin_offload(), 0.0);
        let a = EdgeStats {
            hits: 3,
            misses: 1,
            coalesced: 2,
            ..Default::default()
        };
        let m = a.merged(&a);
        assert_eq!(m.hits, 6);
        assert!((a.hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn splitmix_spreads_consecutive_indices() {
        let mut buckets = [0u32; 4];
        for i in 0..1000u64 {
            buckets[(splitmix64(42 ^ i) % 4) as usize] += 1;
        }
        assert!(
            buckets.iter().all(|&b| b > 150),
            "hash sharding should not starve an edge: {buckets:?}"
        );
    }
}
