//! The edge-cache delivery tier: CDN-style caches in front of the
//! origin.
//!
//! PR 3's delivery path pulled every segment from one origin over one
//! uplink, so capacity collapsed past ~1000 sessions. This module adds
//! the layer real streaming systems use to move that knee: N edge
//! caches, each with a bounded LRU segment cache, request coalescing
//! (concurrent misses for the same object trigger one origin fill), and
//! cache-fill over the edge's own — possibly lossy — origin link.
//!
//! Two consumers share these types:
//!
//! * [`EdgeCache`] is the *live* path: a viewer session fetches through
//!   it transparently ([`crate::session::run_session_via_edge`]); hits
//!   are served from the edge's local store over the access link alone,
//!   misses add a full origin fetch over the edge's origin link.
//! * [`EdgeTierConfig`] parameterises the *fluid* many-session
//!   simulator ([`crate::serve::simulate_edge_load`]), which shards
//!   thousands of sessions across edges and measures how the capacity
//!   knee scales with edge count.

use std::collections::BTreeMap;

use netstack::fetch::{fetch, ContentServer, FetchError};
use netstack::link::LinkConfig;
use netstack::tcplite::TcpConfig;

/// A bounded, byte-budgeted LRU index. The cache tracks sizes and
/// recency; the bytes themselves live wherever the owner keeps them
/// (an internal [`ContentServer`] for the live edge, the manifest for
/// the fluid simulator).
#[derive(Debug, Clone, Default)]
pub struct Lru<K: Ord + Clone> {
    capacity_bytes: usize,
    held_bytes: usize,
    seq: u64,
    entries: BTreeMap<K, (usize, u64)>,
    evictions: u64,
}

impl<K: Ord + Clone> Lru<K> {
    /// An empty cache holding at most `capacity_bytes`.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            held_bytes: 0,
            seq: 0,
            entries: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// An effectively unbounded cache (the single-origin degenerate
    /// case: the "edge" *is* the origin and holds everything).
    #[must_use]
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Whether `key` is cached, without touching recency.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Marks `key` most-recently-used; `false` if it is not cached.
    pub fn touch(&mut self, key: &K) -> bool {
        self.seq += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.1 = self.seq;
                true
            }
            None => false,
        }
    }

    /// Inserts `key`, evicting least-recently-used entries until it
    /// fits. Returns the evicted keys. An object larger than the whole
    /// cache is not inserted (the caller should pass it through) — and
    /// any stale entry under the same key is dropped and reported
    /// evicted, so the cache never keeps serving an outdated version it
    /// just refused to replace.
    pub fn insert(&mut self, key: K, bytes: usize) -> Vec<K> {
        if bytes > self.capacity_bytes {
            let mut evicted = Vec::new();
            if let Some((sz, _)) = self.entries.remove(&key) {
                self.held_bytes -= sz;
                self.evictions += 1;
                evicted.push(key);
            }
            return evicted;
        }
        self.seq += 1;
        if let Some(old) = self.entries.insert(key, (bytes, self.seq)) {
            self.held_bytes -= old.0;
        }
        self.held_bytes += bytes;
        let mut evicted = Vec::new();
        while self.held_bytes > self.capacity_bytes {
            // Deterministic: seq values are unique, so the LRU victim is
            // unambiguous.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("over capacity implies non-empty");
            let (sz, _) = self.entries.remove(&victim).expect("victim exists");
            self.held_bytes -= sz;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// The entry that [`Lru::insert`] would evict first (least recently
    /// used), without evicting it. `None` when the cache is empty.
    /// Admission policies compare the candidate against this victim
    /// before deciding whether the insert is worth the eviction.
    #[must_use]
    pub fn peek_victim(&self) -> Option<(&K, usize)> {
        self.entries
            .iter()
            .min_by_key(|(_, (_, used))| *used)
            .map(|(k, (bytes, _))| (k, *bytes))
    }

    /// Whether inserting a new `bytes`-sized object would force at
    /// least one eviction. Oversized objects are never inserted, so
    /// they never evict.
    #[must_use]
    pub fn would_evict(&self, bytes: usize) -> bool {
        bytes <= self.capacity_bytes && self.held_bytes + bytes > self.capacity_bytes
    }

    /// Removes `key` outright (cache invalidation, not capacity
    /// pressure — the eviction counter is untouched). Returns the freed
    /// bytes, or `None` if it was not cached.
    pub fn remove(&mut self, key: &K) -> Option<usize> {
        let (bytes, _) = self.entries.remove(key)?;
        self.held_bytes -= bytes;
        Some(bytes)
    }

    /// Bytes currently held.
    #[must_use]
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Cached objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Empties the cache in place — a *cold restart*, not eviction
    /// pressure: the eviction counter (and the recency clock) survive,
    /// so tier-level stats stay monotone across a crash/restart cycle.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.held_bytes = 0;
    }
}

/// In-flight origin fills, keyed by `(key, generation)`. Concurrent
/// misses for the same generation of the same object coalesce onto one
/// fill — the thundering-herd defence for a just-published live-edge
/// segment — and a *failed* fill clears its slot, so the next request
/// starts exactly one fresh fill instead of piling a second origin
/// round trip onto a doomed one (or replaying its failure forever).
///
/// The generation distinguishes versions of a *mutable* object (the
/// live manifest): waiters never coalesce onto a fill of a stale
/// generation. Immutable objects use generation 0.
///
/// `V` is whatever the owner needs to track per fill (the fluid
/// simulator stores remaining bytes; `()` works for pure coalescing).
#[derive(Debug, Clone, Default)]
pub struct FillTable<K: Ord + Clone, V> {
    inflight: BTreeMap<(K, u64), V>,
    started: u64,
    joined: u64,
    failed: u64,
}

impl<K: Ord + Clone, V> FillTable<K, V> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inflight: BTreeMap::new(),
            started: 0,
            joined: 0,
            failed: 0,
        }
    }

    /// One requester asks for `(key, generation)`: returns `true` when
    /// this request *started* the fill (the payload is built lazily),
    /// `false` when it joined one already in flight.
    pub fn request(&mut self, key: K, generation: u64, payload: impl FnOnce() -> V) -> bool {
        match self.inflight.entry((key, generation)) {
            std::collections::btree_map::Entry::Occupied(_) => {
                self.joined += 1;
                false
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(payload());
                self.started += 1;
                true
            }
        }
    }

    /// Whether a fill for `(key, generation)` is in flight.
    #[must_use]
    pub fn contains(&self, key: &K, generation: u64) -> bool {
        self.inflight.contains_key(&(key.clone(), generation))
    }

    /// The fill landed: clears the slot, returning its payload.
    pub fn complete(&mut self, key: &K, generation: u64) -> Option<V> {
        self.inflight.remove(&(key.clone(), generation))
    }

    /// The fill failed: clears the slot so a retry starts fresh.
    pub fn fail(&mut self, key: &K, generation: u64) -> Option<V> {
        let gone = self.inflight.remove(&(key.clone(), generation));
        if gone.is_some() {
            self.failed += 1;
        }
        gone
    }

    /// Mutable walk over in-flight fills (the fluid engine drains
    /// remaining bytes this way).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&(K, u64), &mut V)> {
        self.inflight.iter_mut()
    }

    /// Read-only walk over in-flight fills (the shield tier inspects an
    /// edge's fills to decide which can drain from the shield cache).
    pub fn iter(&self) -> impl Iterator<Item = (&(K, u64), &V)> {
        self.inflight.iter()
    }

    /// Fills currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// `true` when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Fills ever started (each one origin round trip).
    #[must_use]
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Requests that coalesced onto an in-flight fill.
    #[must_use]
    pub fn joined(&self) -> u64 {
        self.joined
    }

    /// Account `n` extra requesters coalescing onto an in-flight fill
    /// in one call — the counted form of [`FillTable::request`]
    /// returning `false` `n` times. The cohort engine attaches a whole
    /// counted session class to a fill with a single request, so this
    /// keeps the `joined` ledger identical to the per-session engine's.
    pub fn join_many(&mut self, n: u64) {
        self.joined += n;
    }

    /// Fills that failed (and freed their slot).
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

/// What one edge observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that started an origin fill.
    pub misses: u64,
    /// Requests that joined an in-flight fill instead of starting a
    /// second one (fluid simulator only — the live path is serial).
    pub coalesced: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Stale mutable objects re-fetched from the origin (a subset of
    /// `misses`: the object was cached but its TTL had lapsed).
    pub revalidations: u64,
    /// Objects dropped by explicit invalidation (live DVR-window
    /// expiry), not by capacity pressure.
    pub invalidations: u64,
    /// Bytes pulled from the origin.
    pub origin_bytes: u64,
    /// Bytes served to viewers.
    pub served_bytes: u64,
}

impl EdgeStats {
    /// Fraction of requests answered without a new origin fill
    /// (coalesced waiters count as offloaded: one fill fed them all).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }

    /// Fraction of served bytes that never crossed the origin link —
    /// the offload a CDN tier exists to provide.
    #[must_use]
    pub fn origin_offload(&self) -> f64 {
        if self.served_bytes == 0 {
            0.0
        } else {
            1.0 - self.origin_bytes as f64 / self.served_bytes as f64
        }
    }

    /// Element-wise sum over any number of caches — the tier-level
    /// rollup [`crate::shield::TierStats`] is built from.
    #[must_use]
    pub fn merged_all<'a>(stats: impl IntoIterator<Item = &'a EdgeStats>) -> EdgeStats {
        stats
            .into_iter()
            .fold(EdgeStats::default(), |acc, s| acc.merged(s))
    }

    /// Element-wise sum, for tier-level aggregates.
    #[must_use]
    pub fn merged(&self, other: &EdgeStats) -> EdgeStats {
        EdgeStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            coalesced: self.coalesced + other.coalesced,
            evictions: self.evictions + other.evictions,
            revalidations: self.revalidations + other.revalidations,
            invalidations: self.invalidations + other.invalidations,
            origin_bytes: self.origin_bytes + other.origin_bytes,
            served_bytes: self.served_bytes + other.served_bytes,
        }
    }
}

/// A consistent-hash ring over the edges of a tier: each edge owns the
/// arcs clockwise-preceding its virtual points, and a key routes to the
/// owner of the first point at or after its hash.
///
/// The property that makes this the failover structure (and that the
/// test suite pins): removing one edge re-homes *only that edge's
/// keys* — every key whose owner is still alive keeps it, so a crash
/// moves at most ~1/N of the keyspace onto survivors instead of
/// reshuffling everyone (the thundering-herd failure mode of modular
/// hashing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point hash, edge)` sorted by hash (ties broken by edge index,
    /// deterministically).
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// A ring over `edges` edges with `vnodes` virtual points each,
    /// placed by `splitmix64` from `seed`.
    #[must_use]
    pub fn new(edges: usize, vnodes: usize, seed: u64) -> Self {
        assert!(edges > 0, "a ring needs at least one edge");
        assert!(vnodes > 0, "a ring needs at least one point per edge");
        let mut points = Vec::with_capacity(edges * vnodes);
        for e in 0..edges {
            for v in 0..vnodes {
                let h = splitmix64(seed ^ (((e as u64) << 16) | v as u64));
                points.push((h, e as u32));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// Edges on the ring.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.points.iter().map(|&(_, e)| e).max().unwrap_or(0) as usize + 1
    }

    /// The index of the first point at or clockwise-after `key`.
    fn first_point(&self, key: u64) -> usize {
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The edge owning `key` with every edge up.
    #[must_use]
    pub fn route(&self, key: u64) -> usize {
        self.points[self.first_point(key)].1 as usize
    }

    /// The edge owning `key` given liveness flags: walk clockwise from
    /// the owner point to the first point on a live edge. `None` when
    /// every edge is down. When `key`'s owner is up this *is*
    /// [`HashRing::route`] — the ≤ 1/N remap guarantee by construction.
    #[must_use]
    pub fn route_alive(&self, key: u64, up: &[bool]) -> Option<usize> {
        let start = self.first_point(key);
        for i in 0..self.points.len() {
            let e = self.points[(start + i) % self.points.len()].1 as usize;
            if up.get(e).copied().unwrap_or(false) {
                return Some(e);
            }
        }
        None
    }
}

/// Configuration of one live edge cache.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Segment-cache budget in bytes.
    pub cache_capacity_bytes: usize,
    /// Transport used on the edge→origin fill path.
    pub origin_tcp: TcpConfig,
    /// The edge's own origin link (typically better than an access
    /// link, but still lossy).
    pub origin_link: LinkConfig,
    /// Seed for the origin link's loss process (advanced per fill so
    /// repeated fills see fresh loss draws, deterministically).
    pub origin_seed: u64,
    /// How long a *mutable* object (the live manifest) stays fresh
    /// after a fill, in ticks. `0` — the safe default — revalidates on
    /// every request; VOD objects fetched via
    /// [`EdgeCache::fetch_through`] are immutable and ignore this.
    pub mutable_ttl_ticks: u64,
    /// Retry discipline for transport-level origin-fill failures. The
    /// default makes no retries (one attempt, fail fast — the legacy
    /// behavior); every attempt advances the fill counter, so retries
    /// see fresh deterministic loss draws.
    pub retry: crate::fault::RetryPolicy,
}

impl Default for EdgeConfig {
    /// 1 MiB cache over a clean default link; mutable objects
    /// revalidate on every request; origin fills are not retried.
    fn default() -> Self {
        Self {
            cache_capacity_bytes: 1 << 20,
            origin_tcp: TcpConfig::default(),
            origin_link: LinkConfig::default(),
            origin_seed: 0xED6E,
            mutable_ttl_ticks: 0,
            retry: crate::fault::RetryPolicy::default(),
        }
    }
}

/// One live edge cache: a bounded LRU of named objects, filled from the
/// origin on demand and serving viewers from its local store.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    config: EdgeConfig,
    lru: Lru<String>,
    store: ContentServer,
    /// `name -> tick of last fill` for objects fetched as mutable;
    /// drives TTL freshness in [`Self::fetch_mutable_through`].
    fetched_at: BTreeMap<String, u64>,
    origin_up: bool,
    fills: u64,
    stats: EdgeStats,
}

impl EdgeCache {
    /// An empty (cold) edge.
    #[must_use]
    pub fn new(config: EdgeConfig) -> Self {
        Self {
            lru: Lru::new(config.cache_capacity_bytes),
            config,
            store: ContentServer::new(),
            fetched_at: BTreeMap::new(),
            origin_up: true,
            fills: 0,
            stats: EdgeStats::default(),
        }
    }

    /// Simulates an origin outage (or recovery): while down, misses
    /// fail, but warm objects keep serving.
    pub fn set_origin_up(&mut self, up: bool) {
        self.origin_up = up;
    }

    /// What this edge has observed so far.
    #[must_use]
    pub fn stats(&self) -> &EdgeStats {
        &self.stats
    }

    /// Objects currently cached.
    #[must_use]
    pub fn cached_objects(&self) -> usize {
        self.lru.len()
    }

    /// Bytes currently cached.
    #[must_use]
    pub fn cached_bytes(&self) -> usize {
        self.lru.held_bytes()
    }

    /// Copies `names` from the origin into the cache instantly (content
    /// pre-positioning, the CDN's push model). Objects missing from the
    /// origin are skipped; objects larger than the cache are skipped.
    pub fn prewarm(&mut self, origin: &ContentServer, names: &[String]) {
        for name in names {
            if let Some(data) = origin.get(name) {
                self.admit(name.clone(), data.to_vec());
            }
        }
    }

    /// Inserts one object, evicting as needed (both the LRU index and
    /// the local store stay consistent). An object larger than the
    /// whole cache is not stored — and any stale cached version of it
    /// is dropped rather than left to serve as a phantom hit.
    fn admit(&mut self, name: String, data: Vec<u8>) {
        let len = data.len();
        let cacheable = len <= self.config.cache_capacity_bytes;
        for victim in self.lru.insert(name.clone(), len) {
            self.store.remove(&victim);
        }
        self.stats.evictions = self.lru.evictions();
        if cacheable {
            self.store.publish(name, data);
        }
    }

    /// Fetches `name` through this edge: a hit is served from the local
    /// store over the viewer's access link alone; a miss first fills
    /// from `origin` over the edge's origin link, caches the object,
    /// then serves it. Returns the bytes and the total simulated ticks
    /// (fill + access leg).
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the viewer leg fails, when a miss
    /// cannot be filled (transport failure or missing object), or when
    /// the origin is down and the object is not cached.
    pub fn fetch_through(
        &mut self,
        origin: &ContentServer,
        name: &str,
        viewer_tcp: TcpConfig,
        viewer_link: LinkConfig,
        viewer_seed: u64,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let key = name.to_string();
        let mut fill_ticks = 0u64;
        let mut passthrough: Option<ContentServer> = None;
        if self.lru.touch(&key) {
            self.stats.hits += 1;
        } else {
            if !self.origin_up {
                return Err(FetchError::Server("origin-unreachable".to_string()));
            }
            let (ticks, through) = self.fill_from_origin(origin, name)?;
            fill_ticks = ticks;
            passthrough = through;
        }
        self.serve_local(
            name,
            passthrough,
            viewer_tcp,
            viewer_link,
            viewer_seed,
            fill_ticks,
        )
    }

    /// Fetches a *mutable* object (the live manifest) through this
    /// edge. A cached copy younger than `mutable_ttl_ticks` is served
    /// as a hit; a stale copy is revalidated — re-fetched from the
    /// origin and replaced (counted under both `misses` and
    /// `revalidations`). When the origin is down a stale copy is still
    /// served (stale-if-error: a slightly old manifest beats a dead
    /// channel), and only a wholly uncached object fails.
    ///
    /// `now` is the caller's simulated clock; freshness is measured
    /// against the `now` of the fill that cached the object.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when a leg fails or the object is
    /// uncached with the origin unreachable.
    pub fn fetch_mutable_through(
        &mut self,
        origin: &ContentServer,
        name: &str,
        viewer_tcp: TcpConfig,
        viewer_link: LinkConfig,
        viewer_seed: u64,
        now: u64,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let key = name.to_string();
        let cached = self.lru.touch(&key);
        let fresh = cached
            && self
                .fetched_at
                .get(name)
                .is_some_and(|&at| now < at.saturating_add(self.config.mutable_ttl_ticks));
        let mut fill_ticks = 0u64;
        let mut passthrough: Option<ContentServer> = None;
        if fresh || (cached && !self.origin_up) {
            self.stats.hits += 1;
        } else {
            if !self.origin_up {
                return Err(FetchError::Server("origin-unreachable".to_string()));
            }
            if cached {
                self.stats.revalidations += 1;
            }
            let (ticks, through) = self.fill_from_origin(origin, name)?;
            fill_ticks = ticks;
            if through.is_none() {
                self.fetched_at.insert(key, now);
            }
            passthrough = through;
        }
        self.serve_local(
            name,
            passthrough,
            viewer_tcp,
            viewer_link,
            viewer_seed,
            fill_ticks,
        )
    }

    /// Fetches `name` through this edge with a shield mid-tier behind
    /// it: an edge hit is served locally; an edge miss first *ensures*
    /// the object on `shield` (which fills from `origin` on a shield
    /// miss, coalescing per `(key, generation)`), then fills this edge
    /// from the shield's store over the edge's origin link — which now
    /// models the edge→shield leg, so only the shield's own link
    /// crosses to the true origin.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the viewer leg fails, when the
    /// shield is down (and the object is uncached here), or when the
    /// shield itself cannot fill from the origin.
    pub fn fetch_through_shield(
        &mut self,
        shield: &mut crate::shield::ShieldCache,
        origin: &ContentServer,
        name: &str,
        viewer_tcp: TcpConfig,
        viewer_link: LinkConfig,
        viewer_seed: u64,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let key = name.to_string();
        let mut fill_ticks = 0u64;
        let mut passthrough: Option<ContentServer> = None;
        if self.lru.touch(&key) {
            self.stats.hits += 1;
        } else {
            if !self.origin_up {
                return Err(FetchError::Server("shield-unreachable".to_string()));
            }
            let (parent_ticks, shield_through) = shield.ensure(origin, name)?;
            let source = shield_through.as_ref().unwrap_or(shield.server());
            let len = source.get(name).map_or(0, |d| d.len() as u64);
            let (ticks, through) = self.fill_from_origin(source, name)?;
            shield.note_served(len);
            fill_ticks = parent_ticks + ticks;
            passthrough = through;
        }
        self.serve_local(
            name,
            passthrough,
            viewer_tcp,
            viewer_link,
            viewer_seed,
            fill_ticks,
        )
    }

    /// The mutable-object counterpart of
    /// [`EdgeCache::fetch_through_shield`]: TTL freshness is enforced
    /// at the edge, revalidations go through the shield (which applies
    /// its own TTL against the origin), and *stale-if-error* extends
    /// across the extra hop — a cached copy is served when the shield
    /// is unreachable, and also when the shield itself cannot reach
    /// the origin for a revalidation.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when a leg fails or the object is
    /// uncached with the shield (or the origin behind it) unreachable.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_mutable_through_shield(
        &mut self,
        shield: &mut crate::shield::ShieldCache,
        origin: &ContentServer,
        name: &str,
        viewer_tcp: TcpConfig,
        viewer_link: LinkConfig,
        viewer_seed: u64,
        now: u64,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let key = name.to_string();
        let cached = self.lru.touch(&key);
        let fresh = cached
            && self
                .fetched_at
                .get(name)
                .is_some_and(|&at| now < at.saturating_add(self.config.mutable_ttl_ticks));
        let parent_ok = self.origin_up && shield.is_up();
        let mut fill_ticks = 0u64;
        let mut passthrough: Option<ContentServer> = None;
        if fresh || (cached && !parent_ok) {
            // Fresh — or stale-if-error: the shield (or the link to it)
            // is down, and a slightly old copy beats a dead channel.
            self.stats.hits += 1;
        } else if !parent_ok {
            return Err(FetchError::Server("shield-unreachable".to_string()));
        } else {
            match shield.ensure_mutable(origin, name, now) {
                Ok((parent_ticks, shield_through)) => {
                    if cached {
                        self.stats.revalidations += 1;
                    }
                    let source = shield_through.as_ref().unwrap_or(shield.server());
                    let len = source.get(name).map_or(0, |d| d.len() as u64);
                    let (ticks, through) = self.fill_from_origin(source, name)?;
                    shield.note_served(len);
                    fill_ticks = parent_ticks + ticks;
                    if through.is_none() {
                        self.fetched_at.insert(key, now);
                    }
                    passthrough = through;
                }
                // Stale-if-error across the second hop: the shield had
                // no copy and the origin behind it is down.
                Err(FetchError::Server(_)) if cached => {
                    self.stats.hits += 1;
                }
                Err(e) => return Err(e),
            }
        }
        self.serve_local(
            name,
            passthrough,
            viewer_tcp,
            viewer_link,
            viewer_seed,
            fill_ticks,
        )
    }

    /// Drops one object outright — the origin told us it expired (live
    /// DVR-window invalidation). Returns whether it was cached. Not an
    /// eviction: capacity stats are untouched, `invalidations` counts
    /// it instead.
    pub fn invalidate(&mut self, name: &str) -> bool {
        let dropped = self.lru.remove(&name.to_string()).is_some();
        if dropped {
            self.store.remove(name);
            self.stats.invalidations += 1;
        }
        self.fetched_at.remove(name);
        dropped
    }

    /// One origin fill: fetch over the edge's origin link, admit into
    /// the cache (or hand back a pass-through server for oversized
    /// objects). The attempt counter advances even when the fill
    /// fails, so a retry after a transport timeout sees fresh (still
    /// deterministic) loss draws instead of replaying the exact
    /// failure forever. Transport failures retry under the configured
    /// [`crate::fault::RetryPolicy`] (backoff ticks count against the
    /// fill time); server-level failures — the object does not exist —
    /// surface immediately, retrying cannot help.
    fn fill_from_origin(
        &mut self,
        origin: &ContentServer,
        name: &str,
    ) -> Result<(u64, Option<ContentServer>), FetchError> {
        let mut backoff_ticks = 0u64;
        let mut failures = 0u32;
        let fill = loop {
            let fill_seed = self.config.origin_seed.wrapping_add(self.fills);
            self.fills += 1;
            match fetch(
                origin,
                name,
                self.config.origin_tcp,
                self.config.origin_link,
                fill_seed,
            ) {
                Ok(fill) => break fill,
                Err(e @ FetchError::Transport(_)) => {
                    failures += 1;
                    match self.config.retry.backoff_before(failures) {
                        Some(wait) => backoff_ticks += wait,
                        None => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        };
        self.stats.misses += 1;
        self.stats.origin_bytes += fill.data.len() as u64;
        let ticks = fill.ticks + backoff_ticks;
        if fill.data.len() <= self.config.cache_capacity_bytes {
            self.admit(name.to_string(), fill.data);
            Ok((ticks, None))
        } else {
            // Serve-through without caching.
            let mut tmp = ContentServer::new();
            tmp.publish(name, fill.data);
            Ok((ticks, Some(tmp)))
        }
    }

    /// The viewer leg: serve from the local store (or a pass-through).
    fn serve_local(
        &mut self,
        name: &str,
        passthrough: Option<ContentServer>,
        viewer_tcp: TcpConfig,
        viewer_link: LinkConfig,
        viewer_seed: u64,
        fill_ticks: u64,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let source = passthrough.as_ref().unwrap_or(&self.store);
        let r = fetch(source, name, viewer_tcp, viewer_link, viewer_seed)?;
        self.stats.served_bytes += r.data.len() as u64;
        Ok((r.data, fill_ticks + r.ticks))
    }
}

/// How the fluid simulator assigns sessions to edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Session `i` goes to edge `i % edges` (perfect balance).
    RoundRobin,
    /// Session `i` goes to `splitmix64(seed ^ i) % edges` (the
    /// imperfect balance a consistent-hash front end would give).
    Hash,
    /// Session `i` routes through a [`HashRing`] over the tier — the
    /// failover sharding: when an edge crashes, only *its* sessions
    /// re-home to survivors (≤ 1/N remap), and they fail back when it
    /// restarts. Faulted runs build the ring regardless of this
    /// setting; choosing it makes the fault-free placement match the
    /// failover placement exactly.
    Ring,
}

/// The edge tier the fluid simulator routes sessions through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeTierConfig {
    /// Edge caches in the tier.
    pub edges: usize,
    /// Per-edge segment-cache budget, bytes.
    pub cache_capacity_bytes: usize,
    /// Each edge's downlink to its viewers, bytes per tick (the PR 3
    /// single-origin uplink, now multiplied by `edges`).
    pub edge_capacity_bytes_per_tick: f64,
    /// Each viewer's access-link ceiling, bytes per tick.
    pub per_session_bytes_per_tick: f64,
    /// The origin uplink every cache fill shares, bytes per tick.
    pub origin_capacity_bytes_per_tick: f64,
    /// Session→edge assignment.
    pub sharding: Sharding,
    /// Pre-position every segment on every edge before sessions start
    /// (as far as each cache's capacity allows).
    pub prewarm: bool,
    /// Simulated origin outage: fills stop progressing at this tick.
    pub origin_down_after: Option<u64>,
}

impl Default for EdgeTierConfig {
    /// Four warm edges, each with the PR 3 single-origin uplink
    /// (4,000 bytes/tick) and an effectively unbounded cache, filled
    /// over a 4,000 byte/tick origin uplink.
    fn default() -> Self {
        Self {
            edges: 4,
            cache_capacity_bytes: usize::MAX,
            edge_capacity_bytes_per_tick: 4_000.0,
            per_session_bytes_per_tick: 100.0,
            origin_capacity_bytes_per_tick: 4_000.0,
            sharding: Sharding::RoundRobin,
            prewarm: true,
            origin_down_after: None,
        }
    }
}

/// The edge-assignment hash for [`Sharding::Hash`] — `signal`'s
/// SplitMix64 mixer, re-exported so delivery code has one canonical
/// spreading function.
pub use signal::rng::splitmix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used_within_budget() {
        let mut lru: Lru<&'static str> = Lru::new(100);
        assert!(lru.is_empty());
        assert!(lru.insert("a", 40).is_empty());
        assert!(lru.insert("b", 40).is_empty());
        assert!(lru.touch(&"a")); // b is now the LRU entry
        let evicted = lru.insert("c", 40);
        assert_eq!(evicted, vec!["b"]);
        assert!(lru.contains(&"a") && lru.contains(&"c") && !lru.contains(&"b"));
        assert_eq!(lru.held_bytes(), 80);
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn lru_rejects_objects_larger_than_itself() {
        let mut lru: Lru<u32> = Lru::new(10);
        assert!(lru.insert(1, 11).is_empty());
        assert!(!lru.contains(&1));
        assert_eq!(lru.held_bytes(), 0);
        // Growing a cached object past the budget drops the stale
        // entry instead of leaving it to serve phantom hits.
        assert!(lru.insert(1, 5).is_empty());
        assert_eq!(lru.insert(1, 11), vec![1]);
        assert!(!lru.contains(&1));
        assert_eq!(lru.held_bytes(), 0);
    }

    #[test]
    fn lru_reinsert_updates_size_without_leak() {
        let mut lru: Lru<u32> = Lru::new(100);
        lru.insert(1, 60);
        lru.insert(1, 30);
        assert_eq!(lru.held_bytes(), 30);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn edge_cache_hits_after_first_fetch() {
        let mut origin = ContentServer::new();
        origin.publish("t/seg0", vec![7u8; 800]);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let (a, cold_ticks) = edge
            .fetch_through(
                &origin,
                "t/seg0",
                TcpConfig::default(),
                LinkConfig::default(),
                1,
            )
            .unwrap();
        let (b, warm_ticks) = edge
            .fetch_through(
                &origin,
                "t/seg0",
                TcpConfig::default(),
                LinkConfig::default(),
                2,
            )
            .unwrap();
        assert_eq!(a, vec![7u8; 800]);
        assert_eq!(a, b);
        assert!(
            warm_ticks < cold_ticks,
            "hit ({warm_ticks}) must beat miss ({cold_ticks}): no origin leg"
        );
        let s = edge.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.origin_bytes, 800);
        assert_eq!(s.served_bytes, 1600);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.origin_offload() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warm_edge_survives_origin_outage() {
        let mut origin = ContentServer::new();
        origin.publish("t/seg0", vec![1u8; 300]);
        origin.publish("t/seg1", vec![2u8; 300]);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        edge.prewarm(&origin, &["t/seg0".to_string()]);
        edge.set_origin_up(false);
        // Cached object still serves.
        let (data, _) = edge
            .fetch_through(
                &origin,
                "t/seg0",
                TcpConfig::default(),
                LinkConfig::default(),
                3,
            )
            .unwrap();
        assert_eq!(data, vec![1u8; 300]);
        // Uncached object fails cleanly.
        let err = edge
            .fetch_through(
                &origin,
                "t/seg1",
                TcpConfig::default(),
                LinkConfig::default(),
                4,
            )
            .unwrap_err();
        assert_eq!(err, FetchError::Server("origin-unreachable".to_string()));
    }

    #[test]
    fn bounded_edge_evicts_and_refills() {
        let mut origin = ContentServer::new();
        origin.publish("a", vec![1u8; 600]);
        origin.publish("b", vec![2u8; 600]);
        let mut edge = EdgeCache::new(EdgeConfig {
            cache_capacity_bytes: 1_000,
            ..Default::default()
        });
        let tcp = TcpConfig::default();
        let link = LinkConfig::default();
        edge.fetch_through(&origin, "a", tcp, link, 1).unwrap();
        edge.fetch_through(&origin, "b", tcp, link, 2).unwrap(); // evicts a
        assert_eq!(edge.cached_objects(), 1);
        assert_eq!(edge.stats().evictions, 1);
        edge.fetch_through(&origin, "a", tcp, link, 3).unwrap(); // refill
        assert_eq!(edge.stats().misses, 3);
        assert_eq!(edge.stats().hits, 0);
    }

    #[test]
    fn oversized_object_passes_through_uncached() {
        let mut origin = ContentServer::new();
        origin.publish("big", vec![9u8; 5_000]);
        let mut edge = EdgeCache::new(EdgeConfig {
            cache_capacity_bytes: 1_000,
            ..Default::default()
        });
        let (data, _) = edge
            .fetch_through(
                &origin,
                "big",
                TcpConfig::default(),
                LinkConfig::default(),
                1,
            )
            .unwrap();
        assert_eq!(data.len(), 5_000);
        assert_eq!(edge.cached_objects(), 0, "oversized objects are not cached");
    }

    #[test]
    fn failed_fills_retry_with_fresh_seeds() {
        // 65% loss and a tight transport deadline: the first two fill
        // attempts (seeds 3 and 4) deterministically time out, the
        // third (seed 5) succeeds. Before the attempt counter advanced
        // on failure, every retry replayed seed 3's timeout forever.
        let mut origin = ContentServer::new();
        origin.publish("x", vec![7u8; 1500]);
        let mut edge = EdgeCache::new(EdgeConfig {
            origin_tcp: TcpConfig {
                deadline_ticks: 1_200,
                ..Default::default()
            },
            origin_link: LinkConfig::default().with_loss(0.65),
            origin_seed: 3,
            ..Default::default()
        });
        let viewer_tcp = TcpConfig::default();
        let viewer_link = LinkConfig::default();
        let mut attempts = 0;
        let data = loop {
            attempts += 1;
            assert!(attempts <= 5, "retries must see fresh loss draws");
            match edge.fetch_through(&origin, "x", viewer_tcp, viewer_link, 1) {
                Ok((data, _)) => break data,
                Err(FetchError::Transport(_)) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(data, vec![7u8; 1500]);
        assert_eq!(attempts, 3, "seeds 3 and 4 fail, 5 succeeds");
        // The successful fill cached the object.
        assert_eq!(edge.stats().hits, 0);
        edge.fetch_through(&origin, "x", viewer_tcp, viewer_link, 2)
            .unwrap();
        assert_eq!(edge.stats().hits, 1);
    }

    #[test]
    fn lossy_origin_link_still_fills_exactly() {
        let mut origin = ContentServer::new();
        origin.publish("x", (0..2000u32).map(|i| i as u8).collect());
        let mut edge = EdgeCache::new(EdgeConfig {
            origin_link: LinkConfig::default().with_loss(0.15),
            ..Default::default()
        });
        let (data, _) = edge
            .fetch_through(&origin, "x", TcpConfig::default(), LinkConfig::default(), 1)
            .unwrap();
        assert_eq!(data, (0..2000u32).map(|i| i as u8).collect::<Vec<u8>>());
    }

    #[test]
    fn stats_merged_sums_every_field() {
        let a = EdgeStats {
            hits: 1,
            misses: 2,
            coalesced: 3,
            evictions: 4,
            revalidations: 5,
            invalidations: 6,
            origin_bytes: 7,
            served_bytes: 8,
        };
        let b = EdgeStats {
            hits: 10,
            misses: 20,
            coalesced: 30,
            evictions: 40,
            revalidations: 50,
            invalidations: 60,
            origin_bytes: 70,
            served_bytes: 80,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            EdgeStats {
                hits: 11,
                misses: 22,
                coalesced: 33,
                evictions: 44,
                revalidations: 55,
                invalidations: 66,
                origin_bytes: 77,
                served_bytes: 88,
            }
        );
        // Merging is commutative and the zero stats are the identity.
        assert_eq!(m, b.merged(&a));
        assert_eq!(a.merged(&EdgeStats::default()), a);
    }

    #[test]
    fn stats_rates_cover_zero_request_and_all_miss_edges() {
        // Zero requests: both rates are defined (no 0/0 NaN).
        let zero = EdgeStats::default();
        assert_eq!(zero.hit_rate(), 0.0);
        assert_eq!(zero.origin_offload(), 0.0);
        // All-miss: every request crossed the origin.
        let all_miss = EdgeStats {
            misses: 9,
            origin_bytes: 900,
            served_bytes: 900,
            ..Default::default()
        };
        assert_eq!(all_miss.hit_rate(), 0.0);
        assert_eq!(all_miss.origin_offload(), 0.0);
        // All-hit: nothing crossed the origin.
        let all_hit = EdgeStats {
            hits: 9,
            served_bytes: 900,
            ..Default::default()
        };
        assert_eq!(all_hit.hit_rate(), 1.0);
        assert_eq!(all_hit.origin_offload(), 1.0);
        // Coalesced waiters count as offloaded requests.
        let a = EdgeStats {
            hits: 3,
            misses: 1,
            coalesced: 2,
            ..Default::default()
        };
        assert!((a.hit_rate() - 5.0 / 6.0).abs() < 1e-12);
        // Served without any requests recorded (prewarmed edge): still
        // well-defined.
        let prewarmed = EdgeStats {
            served_bytes: 500,
            ..Default::default()
        };
        assert_eq!(prewarmed.hit_rate(), 0.0);
        assert_eq!(prewarmed.origin_offload(), 1.0);
    }

    #[test]
    fn fill_table_coalesces_and_retries_after_failure() {
        let mut fills: FillTable<&'static str, u64> = FillTable::new();
        assert!(fills.is_empty());
        // First request starts the fill; the burst joins it.
        assert!(fills.request("seg9", 0, || 100));
        for _ in 0..5 {
            assert!(!fills.request("seg9", 0, || unreachable!("must coalesce")));
        }
        assert_eq!((fills.started(), fills.joined()), (1, 5));
        assert_eq!(fills.len(), 1);
        // A different generation of the same key is a different fill.
        assert!(fills.request("seg9", 1, || 100));
        assert_eq!(fills.started(), 2);
        // Failure clears the slot; the retry starts exactly one fresh
        // fill.
        assert_eq!(fills.fail(&"seg9", 0), Some(100));
        assert_eq!(fills.fail(&"seg9", 0), None, "already cleared");
        assert!(fills.request("seg9", 0, || 42));
        assert_eq!(fills.complete(&"seg9", 0), Some(42));
        assert!(!fills.contains(&"seg9", 0));
        assert!(fills.contains(&"seg9", 1));
        assert_eq!((fills.started(), fills.joined(), fills.failed()), (3, 5, 1));
    }

    #[test]
    fn lru_remove_frees_bytes_without_counting_an_eviction() {
        let mut lru: Lru<u32> = Lru::new(100);
        lru.insert(1, 60);
        assert_eq!(lru.remove(&1), Some(60));
        assert_eq!(lru.remove(&1), None);
        assert_eq!(lru.held_bytes(), 0);
        assert_eq!(lru.evictions(), 0, "invalidation is not eviction");
    }

    #[test]
    fn mutable_fetch_revalidates_on_ttl_expiry() {
        let mut origin = ContentServer::new();
        origin.publish("t/manifest", vec![1u8; 200]);
        let mut edge = EdgeCache::new(EdgeConfig {
            mutable_ttl_ticks: 100,
            ..Default::default()
        });
        let tcp = TcpConfig::default();
        let link = LinkConfig::default();
        // Cold fetch at tick 0: a plain miss, no revalidation.
        edge.fetch_mutable_through(&origin, "t/manifest", tcp, link, 1, 0)
            .unwrap();
        assert_eq!(edge.stats().misses, 1);
        assert_eq!(edge.stats().revalidations, 0);
        // Within TTL: a hit, even though the origin object changed.
        origin.publish("t/manifest", vec![2u8; 200]);
        let (stale, _) = edge
            .fetch_mutable_through(&origin, "t/manifest", tcp, link, 2, 99)
            .unwrap();
        assert_eq!(stale, vec![1u8; 200], "fresh-by-TTL serves the cached copy");
        assert_eq!(edge.stats().hits, 1);
        // Past TTL: revalidated — the new bytes replace the stale copy.
        let (new, _) = edge
            .fetch_mutable_through(&origin, "t/manifest", tcp, link, 3, 100)
            .unwrap();
        assert_eq!(new, vec![2u8; 200]);
        assert_eq!(edge.stats().revalidations, 1);
        assert_eq!(edge.stats().misses, 2);
    }

    #[test]
    fn mutable_fetch_with_zero_ttl_always_revalidates() {
        let mut origin = ContentServer::new();
        origin.publish("t/manifest", vec![1u8; 100]);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let tcp = TcpConfig::default();
        let link = LinkConfig::default();
        for leg in 0..3 {
            edge.fetch_mutable_through(&origin, "t/manifest", tcp, link, leg, leg)
                .unwrap();
        }
        assert_eq!(edge.stats().misses, 3);
        assert_eq!(edge.stats().revalidations, 2);
        assert_eq!(edge.stats().hits, 0);
    }

    #[test]
    fn stale_manifest_serves_through_an_origin_outage() {
        let mut origin = ContentServer::new();
        origin.publish("t/manifest", vec![1u8; 100]);
        let mut edge = EdgeCache::new(EdgeConfig::default()); // TTL 0
        let tcp = TcpConfig::default();
        let link = LinkConfig::default();
        edge.fetch_mutable_through(&origin, "t/manifest", tcp, link, 1, 0)
            .unwrap();
        edge.set_origin_up(false);
        // Stale-if-error: the cached copy serves rather than failing.
        let (data, _) = edge
            .fetch_mutable_through(&origin, "t/manifest", tcp, link, 2, 500)
            .unwrap();
        assert_eq!(data, vec![1u8; 100]);
        // An uncached mutable object still fails cleanly.
        assert_eq!(
            edge.fetch_mutable_through(&origin, "t/other", tcp, link, 3, 500)
                .unwrap_err(),
            FetchError::Server("origin-unreachable".to_string())
        );
    }

    #[test]
    fn invalidation_drops_the_object_and_counts_separately() {
        let mut origin = ContentServer::new();
        origin.publish("t/seg0", vec![1u8; 300]);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let tcp = TcpConfig::default();
        let link = LinkConfig::default();
        edge.fetch_through(&origin, "t/seg0", tcp, link, 1).unwrap();
        assert_eq!(edge.cached_objects(), 1);
        assert!(edge.invalidate("t/seg0"));
        assert!(!edge.invalidate("t/seg0"), "already gone");
        assert!(!edge.invalidate("t/never-cached"));
        assert_eq!(edge.cached_objects(), 0);
        assert_eq!(edge.cached_bytes(), 0);
        assert_eq!(edge.stats().invalidations, 1);
        assert_eq!(edge.stats().evictions, 0);
        // The next fetch is a fresh miss, not a phantom hit.
        edge.fetch_through(&origin, "t/seg0", tcp, link, 2).unwrap();
        assert_eq!(edge.stats().misses, 2);
        assert_eq!(edge.stats().hits, 0);
    }

    #[test]
    fn lru_clear_empties_but_keeps_the_eviction_ledger() {
        let mut lru: Lru<u32> = Lru::new(100);
        lru.insert(1, 60);
        lru.insert(2, 60); // evicts 1
        assert_eq!(lru.evictions(), 1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.held_bytes(), 0);
        assert_eq!(lru.evictions(), 1, "cold restart is not eviction");
        // The cleared cache works normally afterwards.
        lru.insert(3, 60);
        assert!(lru.contains(&3));
    }

    #[test]
    fn retrying_edge_rides_out_a_flaky_origin_link_in_one_call() {
        // Same doomed link as `failed_fills_retry_with_fresh_seeds`,
        // but the retry policy folds the external loop into the fill:
        // one fetch_through call succeeds on the third attempt, and
        // the backoff ticks show up in the fill time.
        let mut origin = ContentServer::new();
        origin.publish("x", vec![7u8; 1500]);
        let flaky = |retry| EdgeConfig {
            origin_tcp: TcpConfig {
                deadline_ticks: 1_200,
                ..Default::default()
            },
            origin_link: LinkConfig::default().with_loss(0.65),
            origin_seed: 3,
            retry,
            ..Default::default()
        };
        let mut edge = EdgeCache::new(flaky(crate::fault::RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 10,
            max_backoff_ticks: 40,
            jitter_ticks: 0,
            seed: 0,
        }));
        let viewer_tcp = TcpConfig::default();
        let viewer_link = LinkConfig::default();
        let (data, ticks) = edge
            .fetch_through(&origin, "x", viewer_tcp, viewer_link, 1)
            .unwrap();
        assert_eq!(data, vec![7u8; 1500]);
        assert_eq!(edge.stats().misses, 1, "one logical fill");
        // Two failures backed off 10 + 20 ticks before the success.
        let mut no_retry = EdgeCache::new(flaky(crate::fault::RetryPolicy::default()));
        no_retry.fills = 2; // skip straight to the succeeding seed 5
        let (_, clean_ticks) = no_retry
            .fetch_through(&origin, "x", viewer_tcp, viewer_link, 1)
            .unwrap();
        assert_eq!(ticks, clean_ticks + 30);
        // Without retries the same edge fails on the first attempt.
        let mut fail_fast = EdgeCache::new(flaky(crate::fault::RetryPolicy::default()));
        assert!(matches!(
            fail_fast
                .fetch_through(&origin, "x", viewer_tcp, viewer_link, 1)
                .unwrap_err(),
            FetchError::Transport(_)
        ));
    }

    #[test]
    fn retry_budget_exhausts_and_surfaces_the_transport_error() {
        let mut origin = ContentServer::new();
        origin.publish("x", vec![7u8; 1500]);
        let mut edge = EdgeCache::new(EdgeConfig {
            origin_tcp: TcpConfig {
                deadline_ticks: 1_200,
                ..Default::default()
            },
            origin_link: LinkConfig::default().with_loss(0.65),
            origin_seed: 3,
            retry: crate::fault::RetryPolicy {
                max_attempts: 2, // seeds 3 and 4 both fail
                base_backoff_ticks: 10,
                max_backoff_ticks: 10,
                jitter_ticks: 0,
                seed: 0,
            },
            ..Default::default()
        });
        assert!(matches!(
            edge.fetch_through(&origin, "x", TcpConfig::default(), LinkConfig::default(), 1)
                .unwrap_err(),
            FetchError::Transport(_)
        ));
        // A missing object is never retried, whatever the budget.
        let mut retrying = EdgeCache::new(EdgeConfig {
            retry: crate::fault::RetryPolicy::standard(1),
            ..Default::default()
        });
        assert!(matches!(
            retrying
                .fetch_through(
                    &origin,
                    "nope",
                    TcpConfig::default(),
                    LinkConfig::default(),
                    1
                )
                .unwrap_err(),
            FetchError::Server(_)
        ));
        assert_eq!(retrying.fills, 1, "one attempt only for a server miss");
    }

    #[test]
    fn ring_routes_deterministically_and_covers_every_edge() {
        let ring = HashRing::new(8, 64, 0xA11CE);
        assert_eq!(ring.edges(), 8);
        let mut buckets = [0u32; 8];
        for i in 0..10_000u64 {
            let k = splitmix64(i);
            let e = ring.route(k);
            assert_eq!(e, ring.route(k), "routing is a pure function");
            buckets[e] += 1;
        }
        assert!(
            buckets.iter().all(|&b| b > 400),
            "no edge starves: {buckets:?}"
        );
    }

    #[test]
    fn ring_failover_moves_only_the_crashed_edges_keys() {
        let ring = HashRing::new(5, 64, 7);
        let all_up = vec![true; 5];
        let mut up = all_up.clone();
        up[2] = false;
        let mut moved = 0u32;
        let mut owned = 0u32;
        for i in 0..10_000u64 {
            let k = splitmix64(0x5EED ^ i);
            let home = ring.route(k);
            assert_eq!(ring.route_alive(k, &all_up), Some(home));
            let after = ring.route_alive(k, &up).unwrap();
            if home == 2 {
                owned += 1;
                assert_ne!(after, 2, "crashed edge serves nothing");
                moved += 1;
            } else {
                assert_eq!(after, home, "survivors keep every key they own");
            }
        }
        assert_eq!(moved, owned, "exactly the crashed edge's keys move");
        assert!(owned > 0, "the crashed edge owned something");
    }

    #[test]
    fn ring_with_all_edges_down_routes_nowhere() {
        let ring = HashRing::new(3, 16, 1);
        assert_eq!(ring.route_alive(42, &[false, false, false]), None);
        // A single survivor takes the whole keyspace.
        for i in 0..100u64 {
            assert_eq!(
                ring.route_alive(splitmix64(i), &[false, true, false]),
                Some(1)
            );
        }
    }

    #[test]
    fn splitmix_spreads_consecutive_indices() {
        let mut buckets = [0u32; 4];
        for i in 0..1000u64 {
            buckets[(splitmix64(42 ^ i) % 4) as usize] += 1;
        }
        assert!(
            buckets.iter().all(|&b| b > 150),
            "hash sharding should not starve an edge: {buckets:?}"
        );
    }
}
