//! A viewer session: fetch → jitter/playout buffer → ABR control.
//!
//! The session fetches the manifest (and, for sealed titles, the
//! license) over `netstack::fetch`, then pulls segments through the
//! reliable TCP-lite transport across a lossy link. A playout buffer
//! drains in real (simulated-tick) time while the next segment
//! downloads; the throughput-driven [`AbrController`] picks the highest
//! rung the measured bandwidth sustains. The report records exactly the
//! quality-of-experience trio streaming systems are judged on: startup
//! delay, rebuffer events, and rung switches.
//!
//! Live viewers ([`run_live_session`]) run the same machinery against a
//! [`LiveOrigin`]'s moving window: they join at the live edge or the
//! DVR start, re-fetch the (mutable, versioned) manifest when it goes
//! stale, wait out unpublished segments on a poll clock, and skip
//! forward over content the rolling window expired — adding the live
//! QoE trio (manifest refreshes, stale-manifest stall ticks, window
//! skips) and per-segment live latency to the report.

use drm::cipher::XteaCtr;
use drm::license::{License, LicenseParseError};
use netstack::fetch::{fetch_traced, ContentServer, FetchError};
use netstack::link::{LinkConfig, LinkTrace};
use netstack::tcplite::TcpConfig;

use crate::edge::EdgeCache;
use crate::fault::RetryPolicy;
use crate::ladder::{LadderError, LiveOrigin, Manifest};
use crate::segment::{demux_segment, Segment};
use crate::shield::ShieldCache;

/// Throughput-driven rung selection, shared by the single-session path
/// and the many-session load simulator.
///
/// `PartialEq` is part of the contract: the cohort engine in
/// `serve`/`calendar` aggregates sessions whose *entire* dynamic state
/// — including this controller's EWMA estimate — is value-identical,
/// so two controllers compare equal exactly when they would make the
/// same rung choices forever given the same samples.
#[derive(Debug, Clone, PartialEq)]
pub struct AbrController {
    /// EWMA smoothing factor for throughput samples (0..=1].
    pub alpha: f64,
    /// Headroom: a rung is sustainable when its required rate is below
    /// `safety * estimate`.
    pub safety: f64,
    estimate_bits_per_tick: Option<f64>,
}

impl AbrController {
    /// A controller with no throughput history.
    #[must_use]
    pub fn new(alpha: f64, safety: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0, "bad alpha");
        assert!(safety > 0.0, "bad safety");
        Self {
            alpha,
            safety,
            estimate_bits_per_tick: None,
        }
    }

    /// The current bandwidth estimate, if any sample arrived yet.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        self.estimate_bits_per_tick
    }

    /// Feeds one download sample.
    pub fn observe(&mut self, bits: f64, ticks: f64) {
        if ticks <= 0.0 {
            return;
        }
        let sample = bits / ticks;
        self.estimate_bits_per_tick = Some(match self.estimate_bits_per_tick {
            None => sample,
            Some(e) => self.alpha * sample + (1.0 - self.alpha) * e,
        });
    }

    /// Picks the highest sustainable rung for segment `seg` (rung 0 when
    /// no throughput has been observed yet — start safe, switch up; also
    /// rung 0 for a manifest with no rungs, rather than underflowing).
    #[must_use]
    pub fn pick(&self, manifest: &Manifest, seg: usize, max_rung: Option<usize>) -> usize {
        if manifest.rungs.is_empty() {
            return 0;
        }
        let ceiling = max_rung
            .unwrap_or(manifest.rungs.len() - 1)
            .min(manifest.rungs.len() - 1);
        let Some(est) = self.estimate_bits_per_tick else {
            return 0;
        };
        let budget = est * self.safety;
        (0..=ceiling)
            .rev()
            .find(|&r| {
                manifest.rungs[r].required_bits_per_tick(seg, manifest.ticks_per_frame) <= budget
            })
            .unwrap_or(0)
    }
}

/// How the session picks rungs — the controllers the PR 10 ABR
/// shootout (`exp_e27_abr`) races on identical link traces.
///
/// Every strategy shares the same [`AbrController`] throughput
/// estimator underneath (it keeps observing downloads either way);
/// they differ in what signal drives the rung choice.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum AbrStrategy {
    /// Throughput-driven: the classic EWMA estimate with safety
    /// headroom ([`AbrController::pick`]) — the pre-PR-10 behaviour
    /// and the default.
    #[default]
    Ewma,
    /// Buffer-occupancy-driven (BBA-style): rung 0 below the
    /// `reservoir`, then rungs mapped linearly across the `cushion`
    /// until the top rung at `reservoir + cushion` ticks of buffer.
    /// Ignores the throughput estimate entirely.
    BufferOccupancy {
        /// Playout-buffer level (ticks) below which the controller
        /// pins rung 0 to refill.
        reservoir_ticks: u64,
        /// Buffer range (ticks) over which rungs ramp linearly from 0
        /// to the ceiling.
        cushion_ticks: u64,
    },
    /// Both signals, conservatively: rung 0 below the reservoir, else
    /// the minimum of the buffer-mapped rung and the EWMA pick — the
    /// buffer caps risk, the throughput estimate caps optimism.
    Hybrid {
        /// As [`AbrStrategy::BufferOccupancy::reservoir_ticks`].
        reservoir_ticks: u64,
        /// As [`AbrStrategy::BufferOccupancy::cushion_ticks`].
        cushion_ticks: u64,
    },
}

impl AbrStrategy {
    /// The rung this strategy picks given the throughput controller's
    /// state and the current playout-buffer level.
    #[must_use]
    pub fn pick(
        &self,
        abr: &AbrController,
        manifest: &Manifest,
        seg: usize,
        max_rung: Option<usize>,
        buffer_ticks: i64,
    ) -> usize {
        match *self {
            AbrStrategy::Ewma => abr.pick(manifest, seg, max_rung),
            AbrStrategy::BufferOccupancy {
                reservoir_ticks,
                cushion_ticks,
            } => buffer_mapped_rung(
                manifest,
                max_rung,
                buffer_ticks,
                reservoir_ticks,
                cushion_ticks,
            ),
            AbrStrategy::Hybrid {
                reservoir_ticks,
                cushion_ticks,
            } => {
                if buffer_ticks <= reservoir_ticks as i64 {
                    0
                } else {
                    let by_buffer = buffer_mapped_rung(
                        manifest,
                        max_rung,
                        buffer_ticks,
                        reservoir_ticks,
                        cushion_ticks,
                    );
                    by_buffer.min(abr.pick(manifest, seg, max_rung))
                }
            }
        }
    }
}

/// BBA-style map from buffer level to rung: 0 at or below the
/// reservoir, the ceiling at or above `reservoir + cushion`, linear in
/// between.
fn buffer_mapped_rung(
    manifest: &Manifest,
    max_rung: Option<usize>,
    buffer_ticks: i64,
    reservoir_ticks: u64,
    cushion_ticks: u64,
) -> usize {
    if manifest.rungs.is_empty() {
        return 0;
    }
    let ceiling = max_rung
        .unwrap_or(manifest.rungs.len() - 1)
        .min(manifest.rungs.len() - 1);
    if buffer_ticks <= reservoir_ticks as i64 {
        return 0;
    }
    let above = (buffer_ticks - reservoir_ticks as i64) as f64;
    let frac = (above / cushion_ticks.max(1) as f64).min(1.0);
    ((frac * ceiling as f64).floor() as usize).min(ceiling)
}

/// Where a live session enters the stream, shared by the
/// transport-level live session and the fluid live simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Join at the newest published segment (lowest latency, no
    /// run-up buffer beyond what pacing allows).
    LiveEdge,
    /// Join at the DVR window start (highest latency, the whole window
    /// available to buffer ahead).
    DvrStart,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Transport configuration.
    pub tcp: TcpConfig,
    /// Access-link conditions.
    pub link: LinkConfig,
    /// Seed for the link's loss process.
    pub seed: u64,
    /// Segments buffered before playback starts (the jitter buffer).
    pub startup_segments: usize,
    /// ABR headroom.
    pub safety: f64,
    /// ABR throughput smoothing.
    pub ewma_alpha: f64,
    /// Cap (or pin, with `Some(0)`) the reachable rung.
    pub max_rung: Option<usize>,
    /// License verification key for sealed titles.
    pub verification_key: Option<Vec<u8>>,
    /// Transport-failure retry discipline for every fetch leg
    /// (manifest, license, segments): each failed attempt backs off
    /// per the policy and re-draws the link's loss randomness. The
    /// default makes a single attempt — no retries — so legacy
    /// sessions fail exactly as before.
    pub retry: RetryPolicy,
    /// Rung-selection strategy. The default ([`AbrStrategy::Ewma`]) is
    /// the pre-PR-10 throughput controller, bit-identical.
    pub abr: AbrStrategy,
    /// Optional bandwidth/loss schedule for the access link, walked on
    /// the session clock: each fetch starts the trace at the tick the
    /// session reaches it (direct-path sessions only; edge routes keep
    /// their own link conditions).
    pub trace: Option<LinkTrace>,
}

impl Default for SessionConfig {
    /// Default transport and link, 2-segment jitter buffer, 0.7 safety,
    /// 0.4 EWMA, free rung choice, no DRM, EWMA ABR, no trace.
    fn default() -> Self {
        Self {
            tcp: TcpConfig::default(),
            link: LinkConfig::default(),
            seed: 1,
            startup_segments: 2,
            safety: 0.7,
            ewma_alpha: 0.4,
            max_rung: None,
            verification_key: None,
            retry: RetryPolicy::default(),
            abr: AbrStrategy::default(),
            trace: None,
        }
    }
}

/// Errors running a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// A fetch failed at the transport or server level.
    Fetch(FetchError),
    /// The manifest did not parse.
    Manifest(&'static str),
    /// The title is sealed but no verification key was configured.
    SealedWithoutKey,
    /// A live session was pointed at a VOD manifest (no live window).
    NotLive,
    /// The live manifest stopped advancing: `max_stale_refreshes`
    /// consecutive refreshes brought no new live edge (e.g. an edge
    /// serving stale-if-error through an endless origin outage).
    LiveStalled,
    /// The license failed verification.
    License(LicenseParseError),
    /// A segment arrived damaged (impossible over the reliable
    /// transport; kept for lossy/datagram delivery paths).
    DamagedSegment(usize),
}

impl core::fmt::Display for SessionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionError::Fetch(e) => write!(f, "fetch failed: {e}"),
            SessionError::Manifest(what) => write!(f, "bad manifest: {what}"),
            SessionError::SealedWithoutKey => {
                f.write_str("title is sealed and no verification key is configured")
            }
            SessionError::NotLive => f.write_str("manifest has no live window"),
            SessionError::LiveStalled => {
                f.write_str("live manifest stopped advancing (stale past the refresh budget)")
            }
            SessionError::License(e) => write!(f, "license rejected: {e:?}"),
            SessionError::DamagedSegment(i) => write!(f, "segment {i} arrived damaged"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<FetchError> for SessionError {
    fn from(e: FetchError) -> Self {
        SessionError::Fetch(e)
    }
}

/// One fetched segment's record.
#[derive(Debug, Clone)]
pub struct SegmentRecord {
    /// Rung the controller chose.
    pub rung: usize,
    /// Ticks the fetch took.
    pub ticks: u64,
    /// Wire bits delivered.
    pub bits: u64,
    /// Source frames carried.
    pub frames: usize,
    /// The demuxed (and unsealed) segment.
    pub segment: Segment,
}

/// What one session experienced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Ticks from session start to first rendered frame.
    pub startup_delay_ticks: u64,
    /// Post-startup playback stalls.
    pub rebuffer_events: u32,
    /// Total stalled ticks.
    pub rebuffer_ticks: u64,
    /// Rung changes after the first segment.
    pub rung_switches: u32,
    /// Transport-failure retries that eventually succeeded, summed
    /// over all fetch legs (zero under the default no-retry policy).
    pub fetch_retries: u32,
    /// Ticks spent backing off between retry attempts (included in
    /// `total_ticks`, and drained from the playout buffer like any
    /// other wall time).
    pub retry_backoff_ticks: u64,
    /// Per-segment records, in playout order.
    pub segments: Vec<SegmentRecord>,
    /// Total simulated ticks (manifest + license + every segment fetch).
    pub total_ticks: u64,
    /// Total wire bits delivered.
    pub delivered_bits: u64,
}

impl SessionReport {
    /// Mean rung index across fetched segments.
    #[must_use]
    pub fn mean_rung(&self) -> f64 {
        if self.segments.is_empty() {
            0.0
        } else {
            self.segments.iter().map(|s| s.rung as f64).sum::<f64>() / self.segments.len() as f64
        }
    }

    /// Delivered bits per tick over the whole session.
    #[must_use]
    pub fn goodput_bits_per_tick(&self) -> f64 {
        self.delivered_bits as f64 / self.total_ticks.max(1) as f64
    }
}

/// Runs one viewer session against a published title.
///
/// # Errors
///
/// Returns [`SessionError`] on transport failure, manifest/license
/// problems, or a damaged segment.
pub fn run_session(
    server: &ContentServer,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    run_session_with(
        |name, leg, now| {
            let r = fetch_traced(
                server,
                name,
                config.tcp,
                config.link,
                config.trace.as_ref(),
                now,
                config.seed.wrapping_add(leg),
            )?;
            Ok((r.data, r.ticks))
        },
        title,
        config,
    )
}

/// Runs one viewer session through an edge cache: every object —
/// manifest, license, segments — is fetched from the edge, which fills
/// from `origin` on miss. The session code is identical to the direct
/// path; only the fetch route changes, which is the point: the edge
/// tier is transparent to viewers.
///
/// # Errors
///
/// Returns [`SessionError`] on transport failure (either leg),
/// manifest/license problems, an unreachable origin on a cold object,
/// or a damaged segment.
pub fn run_session_via_edge(
    origin: &ContentServer,
    edge: &mut EdgeCache,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    run_session_with(
        |name, leg, _now| {
            edge.fetch_through(
                origin,
                name,
                config.tcp,
                config.link,
                config.seed.wrapping_add(leg),
            )
        },
        title,
        config,
    )
}

/// Runs one viewer session through the full cache hierarchy: the edge
/// fills from the `shield` on miss, and only shield misses reach
/// `origin`. The session code is again identical — both cache tiers
/// are transparent to viewers; the assertions the hierarchical tests
/// make are about *where* the bytes came from, not what arrived.
///
/// # Errors
///
/// Returns [`SessionError`] on transport failure, manifest/license
/// problems, an unreachable parent on a cold object (either tier
/// down), or a damaged segment.
pub fn run_session_via_tier(
    origin: &ContentServer,
    shield: &mut ShieldCache,
    edge: &mut EdgeCache,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    run_session_with(
        |name, leg, _now| {
            edge.fetch_through_shield(
                shield,
                origin,
                name,
                config.tcp,
                config.link,
                config.seed.wrapping_add(leg),
            )
        },
        title,
        config,
    )
}

/// Parses manifest bytes, folding every ladder error into the
/// session-level manifest error.
fn parse_manifest(bytes: &[u8]) -> Result<Manifest, SessionError> {
    Manifest::from_bytes(bytes).map_err(|e| match e {
        LadderError::Manifest(what) => SessionError::Manifest(what),
        _ => SessionError::Manifest("unparseable"),
    })
}

/// Salt mixed into the leg number per retry attempt, so attempt `k` of
/// a leg draws link randomness distinct from attempt `k - 1` (and from
/// every other leg's attempts) instead of deterministically replaying
/// the loss pattern that just failed. Attempt 0 leaves the leg number
/// untouched, keeping no-retry runs bit-identical to the pre-retry
/// engine.
const ATTEMPT_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The session engine, generic over how objects are fetched. `leg`
/// numbers each fetch (manifest 0, license 1, segment `i` at `2 + i`)
/// so routes can derive per-leg seeds; `now` is the session clock at
/// the moment the fetch starts, so traced routes can walk a link
/// schedule. Transport failures retry under [`SessionConfig::retry`]:
/// each retry backs off (wall time the playout buffer drains) and
/// re-issues the leg with an attempt-salted leg number.
fn run_session_with(
    mut fetch_object: impl FnMut(&str, u64, u64) -> Result<(Vec<u8>, u64), FetchError>,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    let mut clock = 0u64;
    let mut delivered_bits = 0u64;
    let mut fetch_retries = 0u32;
    let mut retry_backoff_ticks = 0u64;
    // Returns (bytes, transfer ticks, backoff ticks waited). Only the
    // transfer ticks feed the ABR's throughput estimate; both feed the
    // clock and the playout drain.
    let mut fetch_object =
        |name: &str, leg: u64, now: u64| -> Result<(Vec<u8>, u64, u64), SessionError> {
            let mut failures = 0u32;
            let mut waited = 0u64;
            loop {
                let attempt = leg.wrapping_add(u64::from(failures).wrapping_mul(ATTEMPT_SALT));
                match fetch_object(name, attempt, now + waited) {
                    Ok((bytes, ticks)) => {
                        fetch_retries += failures;
                        retry_backoff_ticks += waited;
                        return Ok((bytes, ticks, waited));
                    }
                    Err(e @ FetchError::Transport(_)) => {
                        failures += 1;
                        match config.retry.backoff_before(failures) {
                            Some(wait) => waited += wait,
                            None => return Err(e.into()),
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };

    // 1. Manifest.
    let (bytes, ticks, waited) = fetch_object(&Manifest::manifest_object(title), 0, clock)?;
    clock += ticks + waited;
    delivered_bits += (bytes.len() * 8) as u64;
    let manifest = parse_manifest(&bytes)?;

    // 2. License, when the title is sealed.
    let content_key = if manifest.sealed {
        let key = config
            .verification_key
            .as_deref()
            .ok_or(SessionError::SealedWithoutKey)?;
        let (bytes, ticks, waited) = fetch_object(&Manifest::license_object(title), 1, clock)?;
        clock += ticks + waited;
        delivered_bits += (bytes.len() * 8) as u64;
        let license = License::unseal(&bytes, key).map_err(SessionError::License)?;
        Some(license.content_key)
    } else {
        None
    };

    // 3. Segments, ABR-controlled, through the playout buffer model.
    let mut abr = AbrController::new(config.ewma_alpha, config.safety);
    let n = manifest.segment_count();
    let startup_after = config.startup_segments.clamp(1, n.max(1));
    let mut records: Vec<SegmentRecord> = Vec::with_capacity(n);
    let mut buffer_ticks = 0i64;
    let mut playing = false;
    let mut startup_delay = 0u64;
    let mut rebuffer_events = 0u32;
    let mut rebuffer_ticks = 0u64;
    let mut rung_switches = 0u32;

    for seg in 0..n {
        let rung = config
            .abr
            .pick(&abr, &manifest, seg, config.max_rung, buffer_ticks);
        if let Some(prev) = records.last() {
            if prev.rung != rung {
                rung_switches += 1;
            }
        }
        let entry = &manifest.rungs[rung].segments[seg];
        let (mut bytes, ticks, waited) =
            fetch_object(&manifest.segment_object(rung, seg), 2 + seg as u64, clock)?;
        clock += ticks + waited;
        delivered_bits += (bytes.len() * 8) as u64;
        abr.observe((bytes.len() * 8) as f64, ticks as f64);

        // Playout drains while the fetch (and any retry backoff) was
        // in flight.
        if playing {
            buffer_ticks -= (ticks + waited) as i64;
            if buffer_ticks < 0 {
                rebuffer_events += 1;
                rebuffer_ticks += (-buffer_ticks) as u64;
                buffer_ticks = 0;
            }
        }

        if let Some(key) = content_key.as_ref() {
            XteaCtr::new(key, entry.nonce).apply(&mut bytes);
        }
        let segment = demux_segment(&bytes);
        if segment.video_es.is_none() {
            return Err(SessionError::DamagedSegment(seg));
        }
        buffer_ticks += (entry.frames as u64 * manifest.ticks_per_frame) as i64;
        records.push(SegmentRecord {
            rung,
            ticks,
            bits: (bytes.len() * 8) as u64,
            frames: entry.frames,
            segment,
        });
        if !playing && records.len() >= startup_after {
            playing = true;
            startup_delay = clock;
        }
    }

    Ok(SessionReport {
        startup_delay_ticks: startup_delay,
        rebuffer_events,
        rebuffer_ticks,
        rung_switches,
        fetch_retries,
        retry_backoff_ticks,
        segments: records,
        total_ticks: clock,
        delivered_bits,
    })
}

/// Live-session configuration: the base session knobs plus where to
/// join and how long to stay (a linear channel has no natural end).
#[derive(Debug, Clone)]
pub struct LiveSessionConfig {
    /// Transport/link/buffer/ABR knobs shared with VOD sessions.
    pub base: SessionConfig,
    /// Join at the live edge or the DVR window start.
    pub join: JoinMode,
    /// Segments to play before leaving.
    pub segments_to_play: usize,
    /// Wait granularity while the manifest is stale (the live edge has
    /// not published the next segment yet); clamped to at least 1.
    pub poll_ticks: u64,
    /// When this viewer tunes in, on the channel's global timeline (a
    /// later viewer of the same [`LiveOrigin`] must start at or after
    /// the origin's current tick — the channel never rewinds).
    pub start_tick: u64,
    /// Give-up bar: consecutive manifest refreshes that make no
    /// forward progress (the advertised live edge does not advance)
    /// before the session errors with [`SessionError::LiveStalled`].
    /// Bounds the session when an edge can only serve a stale manifest
    /// forever — e.g. stale-if-error through an endless origin outage.
    pub max_stale_refreshes: u32,
    /// Retry discipline for progress-free manifest refreshes. `None`
    /// reproduces the legacy fixed-interval poll exactly — equivalent
    /// to `RetryPolicy { max_attempts: max_stale_refreshes + 1,
    /// base_backoff_ticks: poll_ticks, max_backoff_ticks: poll_ticks,
    /// jitter_ticks: 0, seed: 0 }`. A backoff-shaped policy lets
    /// viewers poll gently through an origin outage instead of
    /// hammering a fixed interval; its give-up budget then supersedes
    /// `max_stale_refreshes`.
    pub refresh_retry: Option<RetryPolicy>,
}

impl Default for LiveSessionConfig {
    /// Default session knobs, live-edge join, 8 segments, 50-tick
    /// stale-manifest polls, tuning in at channel start, giving up
    /// after 64 progress-free refreshes.
    fn default() -> Self {
        Self {
            base: SessionConfig::default(),
            join: JoinMode::LiveEdge,
            segments_to_play: 8,
            poll_ticks: 50,
            start_tick: 0,
            max_stale_refreshes: 64,
            refresh_retry: None,
        }
    }
}

/// One fetched live segment's record.
#[derive(Debug, Clone)]
pub struct LiveSegmentRecord {
    /// Sequence number in the channel's timeline.
    pub seq: u64,
    /// Rung the controller chose.
    pub rung: usize,
    /// Ticks the fetch took.
    pub ticks: u64,
    /// Wire bits delivered.
    pub bits: u64,
    /// Source frames carried.
    pub frames: usize,
    /// Live latency at completion: session clock minus the segment's
    /// publish tick.
    pub latency_ticks: u64,
    /// The demuxed (and unsealed) segment.
    pub segment: Segment,
}

/// What one live session experienced: the VOD QoE trio plus the live
/// trio — manifest refreshes, stale-manifest stall time, and window
/// skips (content lost to DVR expiry).
#[derive(Debug, Clone)]
pub struct LiveSessionReport {
    /// Ticks from session start to first rendered frame.
    pub startup_delay_ticks: u64,
    /// Post-startup playback stalls.
    pub rebuffer_events: u32,
    /// Total stalled ticks.
    pub rebuffer_ticks: u64,
    /// Rung changes after the first segment.
    pub rung_switches: u32,
    /// Manifest re-fetches (the live window moved past our copy).
    pub manifest_refreshes: u32,
    /// Ticks spent waiting on a manifest that did not reach the wanted
    /// sequence yet (live-edge pacing stalls).
    pub stale_manifest_ticks: u64,
    /// Segments lost to DVR-window expiry (skipped forward).
    pub window_skips: u64,
    /// Per-segment records, in playout order.
    pub segments: Vec<LiveSegmentRecord>,
    /// Total simulated ticks.
    pub total_ticks: u64,
    /// Total wire bits delivered.
    pub delivered_bits: u64,
}

impl LiveSessionReport {
    /// Mean rung index across fetched segments.
    #[must_use]
    pub fn mean_rung(&self) -> f64 {
        if self.segments.is_empty() {
            0.0
        } else {
            self.segments.iter().map(|s| s.rung as f64).sum::<f64>() / self.segments.len() as f64
        }
    }

    /// Mean live latency across fetched segments.
    #[must_use]
    pub fn mean_live_latency_ticks(&self) -> f64 {
        if self.segments.is_empty() {
            0.0
        } else {
            self.segments
                .iter()
                .map(|s| s.latency_ticks as f64)
                .sum::<f64>()
                / self.segments.len() as f64
        }
    }

    /// Worst single-segment live latency.
    #[must_use]
    pub fn max_live_latency_ticks(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.latency_ticks)
            .max()
            .unwrap_or(0)
    }
}

/// The playout-buffer model shared by the live loop's several drain
/// points (fetches, polls, refreshes all consume wall time).
struct Playout {
    buffer_ticks: i64,
    playing: bool,
    rebuffer_events: u32,
    rebuffer_ticks: u64,
}

impl Playout {
    fn drain(&mut self, ticks: u64) {
        if !self.playing {
            return;
        }
        self.buffer_ticks -= ticks as i64;
        if self.buffer_ticks < 0 {
            self.rebuffer_events += 1;
            self.rebuffer_ticks += (-self.buffer_ticks) as u64;
            self.buffer_ticks = 0;
        }
    }
}

/// How live fetches reach the origin server: directly, or through an
/// edge cache (which treats the manifest as a mutable TTL'd object and
/// honours the origin's expiry purges).
trait LiveRoute {
    fn fetch(
        &mut self,
        server: &ContentServer,
        name: &str,
        leg: u64,
        now: u64,
        mutable: bool,
    ) -> Result<(Vec<u8>, u64), FetchError>;

    /// The origin unpublished these objects (DVR-window expiry).
    fn expire(&mut self, _names: &[String]) {}
}

struct DirectRoute<'a> {
    config: &'a SessionConfig,
}

impl LiveRoute for DirectRoute<'_> {
    fn fetch(
        &mut self,
        server: &ContentServer,
        name: &str,
        leg: u64,
        now: u64,
        _mutable: bool,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let r = fetch_traced(
            server,
            name,
            self.config.tcp,
            self.config.link,
            self.config.trace.as_ref(),
            now,
            self.config.seed.wrapping_add(leg),
        )?;
        Ok((r.data, r.ticks))
    }
}

struct EdgeRoute<'a> {
    edge: &'a mut EdgeCache,
    config: &'a SessionConfig,
}

impl LiveRoute for EdgeRoute<'_> {
    fn fetch(
        &mut self,
        server: &ContentServer,
        name: &str,
        leg: u64,
        now: u64,
        mutable: bool,
    ) -> Result<(Vec<u8>, u64), FetchError> {
        let seed = self.config.seed.wrapping_add(leg);
        if mutable {
            self.edge.fetch_mutable_through(
                server,
                name,
                self.config.tcp,
                self.config.link,
                seed,
                now,
            )
        } else {
            self.edge
                .fetch_through(server, name, self.config.tcp, self.config.link, seed)
        }
    }

    fn expire(&mut self, names: &[String]) {
        for name in names {
            self.edge.invalidate(name);
        }
    }
}

/// Runs one live viewer against a [`LiveOrigin`] publishing into
/// `server`. The session's simulated clock *drives* the origin: before
/// every fetch (and during stale-manifest polls) the origin advances
/// to the current tick, so publishes, window expiry, and the viewer's
/// downloads share one timeline.
///
/// # Errors
///
/// Returns [`SessionError`] on transport failure, a manifest without a
/// live window, license problems, or a damaged segment.
pub fn run_live_session(
    server: &mut ContentServer,
    origin: &mut LiveOrigin,
    title: &str,
    config: &LiveSessionConfig,
) -> Result<LiveSessionReport, SessionError> {
    let base = config.base.clone();
    run_live_core(
        server,
        origin,
        &mut DirectRoute { config: &base },
        title,
        config,
    )
}

/// [`run_live_session`] through an edge cache: segments ride the cache
/// as immutable (but expirable) objects, the manifest as a mutable
/// TTL'd one, and the origin's window-expiry purges invalidate the
/// edge — the full live object lifecycle on the delivery path.
///
/// # Errors
///
/// As [`run_live_session`], plus an unreachable origin on cold
/// objects.
pub fn run_live_session_via_edge(
    server: &mut ContentServer,
    origin: &mut LiveOrigin,
    edge: &mut EdgeCache,
    title: &str,
    config: &LiveSessionConfig,
) -> Result<LiveSessionReport, SessionError> {
    let base = config.base.clone();
    run_live_core(
        server,
        origin,
        &mut EdgeRoute {
            edge,
            config: &base,
        },
        title,
        config,
    )
}

fn run_live_core(
    server: &mut ContentServer,
    origin: &mut LiveOrigin,
    route: &mut impl LiveRoute,
    title: &str,
    config: &LiveSessionConfig,
) -> Result<LiveSessionReport, SessionError> {
    let poll = config.poll_ticks.max(1);
    // The stale-refresh loop runs on a retry policy; the legacy
    // `poll_ticks`/`max_stale_refreshes` knobs are exactly the flat
    // policy below (poll-sized backoff, `max_stale + 1` attempts).
    let refresh_retry = config.refresh_retry.unwrap_or(RetryPolicy {
        max_attempts: config.max_stale_refreshes.saturating_add(1),
        base_backoff_ticks: poll,
        max_backoff_ticks: poll,
        jitter_ticks: 0,
        seed: 0,
    });
    let mut clock = config.start_tick;
    let mut leg = 0u64;
    let mut delivered_bits = 0u64;

    // 1. First manifest (the mutable object).
    let delta = origin.advance_to(server, clock);
    route.expire(&delta.expired);
    let manifest_object = Manifest::manifest_object(title);
    let (bytes, ticks) = route.fetch(server, &manifest_object, leg, clock, true)?;
    leg += 1;
    clock += ticks;
    delivered_bits += (bytes.len() * 8) as u64;
    let mut manifest = parse_manifest(&bytes)?;
    let mut window = manifest.live.ok_or(SessionError::NotLive)?;

    // 2. License, when the channel is sealed.
    let content_key = if manifest.sealed {
        let key = config
            .base
            .verification_key
            .as_deref()
            .ok_or(SessionError::SealedWithoutKey)?;
        let (bytes, ticks) =
            route.fetch(server, &Manifest::license_object(title), leg, clock, false)?;
        leg += 1;
        clock += ticks;
        delivered_bits += (bytes.len() * 8) as u64;
        let license = License::unseal(&bytes, key).map_err(SessionError::License)?;
        Some(license.content_key)
    } else {
        None
    };

    // 3. Segments: refresh-gated, ABR-controlled, through the playout
    // buffer.
    let mut abr = AbrController::new(config.base.ewma_alpha, config.base.safety);
    let startup_after = config
        .base
        .startup_segments
        .clamp(1, config.segments_to_play.max(1));
    let mut next_seq = match config.join {
        JoinMode::LiveEdge => window.live_seq,
        JoinMode::DvrStart => window.first_seq,
    };
    let mut playout = Playout {
        buffer_ticks: 0,
        playing: false,
        rebuffer_events: 0,
        rebuffer_ticks: 0,
    };
    let mut startup_delay = 0u64;
    let mut rung_switches = 0u32;
    let mut manifest_refreshes = 0u32;
    let mut stale_manifest_ticks = 0u64;
    let mut window_skips = 0u64;
    let mut last_rung: Option<usize> = None;
    let mut records: Vec<LiveSegmentRecord> = Vec::with_capacity(config.segments_to_play);

    for _ in 0..config.segments_to_play {
        // Bring the manifest window up to (or past) the wanted
        // sequence: skip forward over expired content, refresh when
        // the copy is stale, and poll while the origin itself has not
        // published it yet. Bounded: the refresh retry policy's
        // give-up budget caps consecutive refreshes with no live-edge
        // progress (an edge that can only serve stale-if-error through
        // an endless outage), erroring out instead of polling forever.
        let mut stale_refreshes = 0u32;
        loop {
            if next_seq < window.first_seq {
                // Too slow: the segment expired before we asked.
                window_skips += window.first_seq - next_seq;
                next_seq = window.first_seq;
            }
            if next_seq <= window.live_seq {
                break;
            }
            let delta = origin.advance_to(server, clock);
            route.expire(&delta.expired);
            let (bytes, ticks) = route.fetch(server, &manifest_object, leg, clock, true)?;
            leg += 1;
            clock += ticks;
            delivered_bits += (bytes.len() * 8) as u64;
            playout.drain(ticks);
            manifest_refreshes += 1;
            manifest = parse_manifest(&bytes)?;
            let fresh = manifest.live.ok_or(SessionError::NotLive)?;
            let progressed = fresh.live_seq > window.live_seq;
            let stalled = fresh.live_seq < next_seq;
            window = fresh;
            if stalled {
                stale_refreshes = if progressed { 0 } else { stale_refreshes + 1 };
                // Not published yet (or an edge served a within-TTL
                // stale copy): wait before asking again. A refresh
                // that progressed (but not far enough) restarts the
                // backoff ladder at its base; progress-free refreshes
                // climb it until the give-up budget is spent.
                let wait = if stale_refreshes == 0 {
                    refresh_retry.base_backoff_ticks
                } else {
                    match refresh_retry.backoff_before(stale_refreshes) {
                        Some(wait) => wait,
                        None => return Err(SessionError::LiveStalled),
                    }
                };
                clock += wait;
                stale_manifest_ticks += wait;
                playout.drain(wait);
            }
        }

        let idx = (next_seq - window.first_seq) as usize;
        let rung = config.base.abr.pick(
            &abr,
            &manifest,
            idx,
            config.base.max_rung,
            playout.buffer_ticks,
        );
        if last_rung.is_some_and(|prev| prev != rung) {
            rung_switches += 1;
        }
        last_rung = Some(rung);
        let entry = manifest.rungs[rung].segments[idx].clone();

        // The origin advances only at manifest-refresh points (lazy
        // expiry): everything the manifest in hand lists is still on
        // the server, so a validated sequence can never race its own
        // expiry into a failed fetch.
        let (mut bytes, ticks) = route.fetch(
            server,
            &manifest.segment_object(rung, idx),
            leg,
            clock,
            false,
        )?;
        leg += 1;
        clock += ticks;
        delivered_bits += (bytes.len() * 8) as u64;
        abr.observe((bytes.len() * 8) as f64, ticks as f64);
        playout.drain(ticks);

        if let Some(key) = content_key.as_ref() {
            XteaCtr::new(key, entry.nonce).apply(&mut bytes);
        }
        let segment = demux_segment(&bytes);
        if segment.video_es.is_none() {
            return Err(SessionError::DamagedSegment(records.len()));
        }
        playout.buffer_ticks += (entry.frames as u64 * manifest.ticks_per_frame) as i64;
        records.push(LiveSegmentRecord {
            seq: next_seq,
            rung,
            ticks,
            bits: (bytes.len() * 8) as u64,
            frames: entry.frames,
            latency_ticks: clock.saturating_sub(origin.publish_tick(next_seq)),
            segment,
        });
        if !playout.playing && records.len() >= startup_after {
            playout.playing = true;
            startup_delay = clock - config.start_tick;
        }
        next_seq += 1;
    }

    Ok(LiveSessionReport {
        startup_delay_ticks: startup_delay,
        rebuffer_events: playout.rebuffer_events,
        rebuffer_ticks: playout.rebuffer_ticks,
        rung_switches,
        manifest_refreshes,
        stale_manifest_ticks,
        window_skips,
        segments: records,
        total_ticks: clock - config.start_tick,
        delivered_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{encode_ladder, publish_ladder, seal_ladder, LadderConfig};
    use drm::playback::LicenseAuthority;
    use drm::{Right, TitleId};
    use video::synth::SequenceGen;

    fn published(seal: bool) -> (ContentServer, LicenseAuthority) {
        let frames = SequenceGen::new(12).panning_sequence(48, 32, 12, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        let mut ladder = encode_ladder("movie", &frames, &cfg).unwrap();
        let mut authority = LicenseAuthority::new(b"studio".to_vec());
        let title_id = TitleId(1);
        authority.register_title(title_id);
        let mut server = ContentServer::new();
        if seal {
            seal_ladder(&mut ladder, &authority, title_id);
            server.publish(
                Manifest::license_object("movie"),
                authority.issue(title_id, vec![Right::Play]),
            );
        }
        publish_ladder(&mut server, &ladder);
        (server, authority)
    }

    #[test]
    fn clear_session_plays_every_segment() {
        let (server, _) = published(false);
        let report = run_session(&server, "movie", &SessionConfig::default()).unwrap();
        assert_eq!(report.segments.len(), 3);
        assert!(report.startup_delay_ticks > 0);
        assert_eq!(report.rebuffer_events, 0, "clean fast link must not stall");
        // Every fetched segment decodes.
        for rec in &report.segments {
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
        }
    }

    #[test]
    fn abr_climbs_on_a_fast_link() {
        let (server, _) = published(false);
        let report = run_session(&server, "movie", &SessionConfig::default()).unwrap();
        assert_eq!(
            report.segments[0].rung, 0,
            "sessions start on the safe rung"
        );
        assert!(
            report.segments.last().unwrap().rung > 0,
            "fast link should let the controller switch up"
        );
        assert!(report.rung_switches >= 1);
    }

    #[test]
    fn pinned_rung_never_switches() {
        let (server, _) = published(false);
        let cfg = SessionConfig {
            max_rung: Some(0),
            ..Default::default()
        };
        let report = run_session(&server, "movie", &cfg).unwrap();
        assert!(report.segments.iter().all(|s| s.rung == 0));
        assert_eq!(report.rung_switches, 0);
    }

    #[test]
    fn sealed_title_requires_key_and_then_plays() {
        let (server, authority) = published(true);
        let err = run_session(&server, "movie", &SessionConfig::default()).unwrap_err();
        assert_eq!(err, SessionError::SealedWithoutKey);
        let cfg = SessionConfig {
            verification_key: Some(authority.verification_key().to_vec()),
            ..Default::default()
        };
        let report = run_session(&server, "movie", &cfg).unwrap();
        for rec in &report.segments {
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
        }
    }

    #[test]
    fn wrong_verification_key_is_refused() {
        let (server, _) = published(true);
        let cfg = SessionConfig {
            verification_key: Some(b"impostor".to_vec()),
            ..Default::default()
        };
        assert!(matches!(
            run_session(&server, "movie", &cfg).unwrap_err(),
            SessionError::License(_)
        ));
    }

    #[test]
    fn missing_title_is_a_fetch_error() {
        let (server, _) = published(false);
        assert!(matches!(
            run_session(&server, "nope", &SessionConfig::default()).unwrap_err(),
            SessionError::Fetch(FetchError::Server(_))
        ));
    }

    #[test]
    fn lossy_link_still_plays_and_is_deterministic() {
        let (server, _) = published(false);
        let cfg = SessionConfig {
            link: LinkConfig::default().with_loss(0.1),
            max_rung: Some(0),
            ..Default::default()
        };
        let a = run_session(&server, "movie", &cfg).unwrap();
        let b = run_session(&server, "movie", &cfg).unwrap();
        assert_eq!(a.total_ticks, b.total_ticks);
        assert_eq!(a.startup_delay_ticks, b.startup_delay_ticks);
        assert_eq!(a.segments.len(), 3);
    }

    #[test]
    fn transport_retries_recover_flaky_legs() {
        use netstack::tcplite::TcpError;
        use std::collections::HashMap;

        let (server, _) = published(false);
        let cfg = SessionConfig {
            max_rung: Some(0),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_ticks: 40,
                max_backoff_ticks: 160,
                jitter_ticks: 0,
                seed: 7,
            },
            ..Default::default()
        };
        // Every object's first two attempts die on the wire; the third
        // succeeds. Each attempt must arrive under a distinct leg
        // number (the salted re-draw of link randomness).
        let mut attempts: HashMap<String, Vec<u64>> = HashMap::new();
        let report = run_session_with(
            |name, leg, _now| {
                let seen = attempts.entry(name.to_string()).or_default();
                seen.push(leg);
                if seen.len() <= 2 {
                    return Err(FetchError::Transport(TcpError::Timeout));
                }
                let r = fetch_traced(
                    &server,
                    name,
                    cfg.tcp,
                    cfg.link,
                    None,
                    0,
                    cfg.seed.wrapping_add(leg),
                )?;
                Ok((r.data, r.ticks))
            },
            "movie",
            &cfg,
        )
        .expect("retries must carry the session through");
        assert_eq!(report.segments.len(), 3);
        // 4 objects (manifest + 3 segments) x 2 recovered failures,
        // each leg backing off 40 + 80 ticks.
        assert_eq!(report.fetch_retries, 8);
        assert_eq!(report.retry_backoff_ticks, 4 * 120);
        for legs in attempts.values() {
            assert_eq!(legs.len(), 3);
            assert!(
                legs[0] != legs[1] && legs[1] != legs[2],
                "every attempt must re-salt the leg: {legs:?}"
            );
        }
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_transport_error() {
        use netstack::tcplite::TcpError;

        let cfg = SessionConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_ticks: 10,
                max_backoff_ticks: 10,
                jitter_ticks: 0,
                seed: 0,
            },
            ..Default::default()
        };
        let mut calls = 0u32;
        let err = run_session_with(
            |_, _, _| {
                calls += 1;
                Err(FetchError::Transport(TcpError::Timeout))
            },
            "movie",
            &cfg,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SessionError::Fetch(FetchError::Transport(TcpError::Timeout))
        );
        assert_eq!(calls, 3, "budget spent: exactly max_attempts tries");
    }

    #[test]
    fn default_policy_makes_a_single_attempt() {
        use netstack::tcplite::TcpError;

        let mut calls = 0u32;
        let err = run_session_with(
            |_, _, _| {
                calls += 1;
                Err(FetchError::Transport(TcpError::Timeout))
            },
            "movie",
            &SessionConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SessionError::Fetch(FetchError::Transport(_))));
        assert_eq!(calls, 1, "no-retry default fails fast");
        // And on a clean run the retry counters stay zero.
        let (server, _) = published(false);
        let report = run_session(&server, "movie", &SessionConfig::default()).unwrap();
        assert_eq!(report.fetch_retries, 0);
        assert_eq!(report.retry_backoff_ticks, 0);
    }

    #[test]
    fn session_via_edge_plays_and_warms_the_cache() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (origin, authority) = published(true);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let cfg = SessionConfig {
            verification_key: Some(authority.verification_key().to_vec()),
            ..Default::default()
        };
        let cold = run_session_via_edge(&origin, &mut edge, "movie", &cfg).unwrap();
        assert_eq!(cold.segments.len(), 3);
        assert!(edge.stats().misses > 0);
        for rec in &cold.segments {
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
        }
        // A second viewer pinned to the same rungs rides the warm cache:
        // no new origin bytes, and a faster session.
        let pinned = SessionConfig {
            max_rung: Some(0),
            ..cfg.clone()
        };
        let first_origin_bytes = edge.stats().origin_bytes;
        let a = run_session_via_edge(&origin, &mut edge, "movie", &pinned).unwrap();
        let again_origin = edge.stats().origin_bytes;
        let b = run_session_via_edge(&origin, &mut edge, "movie", &pinned).unwrap();
        assert_eq!(edge.stats().origin_bytes, again_origin);
        assert!(a.total_ticks >= b.total_ticks || again_origin == first_origin_bytes);
        assert!(b.total_ticks < cold.total_ticks);
    }

    #[test]
    fn warm_edge_serves_through_origin_outage() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (origin, _) = published(false);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let cfg = SessionConfig {
            max_rung: Some(0),
            ..Default::default()
        };
        run_session_via_edge(&origin, &mut edge, "movie", &cfg).unwrap();
        edge.set_origin_up(false);
        let report = run_session_via_edge(&origin, &mut edge, "movie", &cfg).unwrap();
        assert_eq!(report.segments.len(), 3);
        assert_eq!(report.rebuffer_events, 0);
        // A cold title during the outage fails cleanly.
        assert!(matches!(
            run_session_via_edge(&origin, &mut edge, "nope", &cfg).unwrap_err(),
            SessionError::Fetch(FetchError::Server(_))
        ));
    }

    /// A live channel: 3-segment wheel, 100-tick publish pace, 4-deep
    /// DVR window, optionally sealed.
    fn live_channel(seal: bool) -> (ContentServer, crate::ladder::LiveOrigin, LicenseAuthority) {
        use crate::ladder::{LiveOrigin, LiveOriginConfig};

        let frames = SequenceGen::new(21).panning_sequence(48, 32, 12, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        let mut ladder = encode_ladder("chan", &frames, &cfg).unwrap();
        let mut authority = LicenseAuthority::new(b"studio".to_vec());
        let title_id = TitleId(3);
        authority.register_title(title_id);
        let mut server = ContentServer::new();
        if seal {
            seal_ladder(&mut ladder, &authority, title_id);
            server.publish(
                Manifest::license_object("chan"),
                authority.issue(title_id, vec![Right::Play]),
            );
        }
        let origin = LiveOrigin::new(
            ladder,
            LiveOriginConfig {
                dvr_window_segments: 4,
                ticks_per_segment: 100,
            },
        )
        .unwrap();
        (server, origin, authority)
    }

    #[test]
    fn live_session_plays_sealed_segments_at_the_edge_of_live() {
        let (mut server, mut origin, authority) = live_channel(true);
        let cfg = LiveSessionConfig {
            base: SessionConfig {
                verification_key: Some(authority.verification_key().to_vec()),
                ..Default::default()
            },
            segments_to_play: 6,
            poll_ticks: 20,
            ..Default::default()
        };
        let r = run_live_session(&mut server, &mut origin, "chan", &cfg).unwrap();
        assert_eq!(r.segments.len(), 6);
        // Consecutive sequences from the join point, every one decodes.
        for (i, rec) in r.segments.iter().enumerate() {
            assert_eq!(rec.seq, r.segments[0].seq + i as u64);
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
            assert_eq!(dec.kinds[0], video::FrameKind::Intra, "closed GOP entry");
        }
        // The viewer outpaces the 100-tick publish clock, so it must
        // refresh the manifest and spend time stalled on staleness.
        assert!(r.manifest_refreshes > 0, "live playback must refresh");
        assert!(r.stale_manifest_ticks > 0, "live-edge pacing must stall");
        assert_eq!(r.window_skips, 0, "keeping up means losing nothing");
        // Fetch-after-publish keeps latency within a couple of segment
        // durations.
        assert!(
            r.max_live_latency_ticks() < 300,
            "latency ran away: {}",
            r.max_live_latency_ticks()
        );
        // Determinism: an identical fresh setup replays identically.
        let (mut server2, mut origin2, _) = live_channel(true);
        let r2 = run_live_session(&mut server2, &mut origin2, "chan", &cfg).unwrap();
        assert_eq!(r.total_ticks, r2.total_ticks);
        assert_eq!(r.stale_manifest_ticks, r2.stale_manifest_ticks);
    }

    #[test]
    fn dvr_start_join_trades_latency_for_runway() {
        // Let the channel run before anyone joins: the DVR window is
        // full, so DvrStart has content in hand while LiveEdge waits
        // for fresh publishes.
        let join = |mode| {
            let (mut server, mut origin, _) = live_channel(false);
            origin.advance_to(&mut server, 500); // window [2, 5] of 4
            let cfg = LiveSessionConfig {
                join: mode,
                segments_to_play: 4,
                poll_ticks: 20,
                start_tick: 500,
                ..Default::default()
            };
            run_live_session(&mut server, &mut origin, "chan", &cfg).unwrap()
        };
        let dvr = join(JoinMode::DvrStart);
        let edge = join(JoinMode::LiveEdge);
        assert!(
            dvr.segments[0].seq < edge.segments[0].seq,
            "DvrStart enters earlier in the timeline: {} vs {}",
            dvr.segments[0].seq,
            edge.segments[0].seq
        );
        assert!(
            dvr.stale_manifest_ticks <= edge.stale_manifest_ticks,
            "runway means less waiting on the live edge"
        );
    }

    #[test]
    fn slow_live_viewer_skips_expired_content_and_keeps_playing() {
        use crate::ladder::{LiveOrigin, LiveOriginConfig};

        let frames = SequenceGen::new(22).panning_sequence(48, 32, 12, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        let ladder = encode_ladder("chan", &frames, &cfg).unwrap();
        let mut server = ContentServer::new();
        // A hot pace (10 ticks/segment) with a 1-deep window: any
        // viewer slower than the pace keeps losing its next segment.
        let mut origin = LiveOrigin::new(
            ladder,
            LiveOriginConfig {
                dvr_window_segments: 1,
                ticks_per_segment: 10,
            },
        )
        .unwrap();
        let session = LiveSessionConfig {
            base: SessionConfig {
                max_rung: Some(0),
                ..Default::default()
            },
            join: JoinMode::DvrStart,
            segments_to_play: 5,
            poll_ticks: 5,
            start_tick: 0,
            max_stale_refreshes: 64,
            refresh_retry: None,
        };
        let r = run_live_session(&mut server, &mut origin, "chan", &session).unwrap();
        assert_eq!(r.segments.len(), 5, "skipping forward must keep playing");
        assert!(
            r.window_skips > 0,
            "a too-slow viewer must lose content to expiry"
        );
        // Sequences still strictly increase (never replayed, never
        // rewound) even across skips.
        for w in r.segments.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn live_session_via_edge_rides_the_cache_and_honours_expiry() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (mut server, mut origin, _) = live_channel(false);
        let mut edge = EdgeCache::new(EdgeConfig {
            mutable_ttl_ticks: 50,
            ..Default::default()
        });
        let cfg = LiveSessionConfig {
            segments_to_play: 6,
            poll_ticks: 20,
            ..Default::default()
        };
        let a =
            run_live_session_via_edge(&mut server, &mut origin, &mut edge, "chan", &cfg).unwrap();
        assert_eq!(a.segments.len(), 6);
        let after_a = *edge.stats();
        assert!(after_a.misses > 0, "cold edge fills from the origin");
        assert!(
            after_a.revalidations > 0,
            "manifest refreshes past the TTL must revalidate"
        );
        assert!(
            after_a.invalidations > 0,
            "window expiry must purge cached segments"
        );
        // A second viewer tunes in where the channel now is and wants
        // the DVR window the first viewer's fills already cached.
        let tune_in = origin.publish_tick(origin.live_seq().unwrap());
        let b = run_live_session_via_edge(
            &mut server,
            &mut origin,
            &mut edge,
            "chan",
            &LiveSessionConfig {
                join: JoinMode::DvrStart,
                start_tick: tune_in,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(b.segments.len(), 6);
        assert!(
            edge.stats().hits > after_a.hits,
            "the cache must be doing work"
        );
    }

    #[test]
    fn endless_origin_outage_stalls_out_instead_of_polling_forever() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (mut server, mut origin, _) = live_channel(false);
        let mut edge = EdgeCache::new(EdgeConfig {
            mutable_ttl_ticks: 50,
            ..Default::default()
        });
        // Both viewers pinned to rung 0 so the second finds the
        // first's cached objects and reaches the manifest stall (not a
        // cold-segment miss).
        let cfg = LiveSessionConfig {
            base: SessionConfig {
                max_rung: Some(0),
                ..Default::default()
            },
            segments_to_play: 4,
            poll_ticks: 20,
            ..Default::default()
        };
        run_live_session_via_edge(&mut server, &mut origin, &mut edge, "chan", &cfg)
            .expect("first viewer warms the edge");
        // The edge loses its origin: the cached manifest serves
        // stale-if-error forever and can never advance. A later viewer
        // must hit the refresh budget and error out, not spin.
        edge.set_origin_up(false);
        let tune_in = origin.publish_tick(origin.live_seq().unwrap());
        let err = run_live_session_via_edge(
            &mut server,
            &mut origin,
            &mut edge,
            "chan",
            &LiveSessionConfig {
                start_tick: tune_in,
                max_stale_refreshes: 8,
                ..cfg
            },
        )
        .unwrap_err();
        assert_eq!(err, SessionError::LiveStalled);
    }

    #[test]
    fn explicit_flat_refresh_policy_matches_the_legacy_poll_exactly() {
        let run = |retry: Option<RetryPolicy>| {
            let (mut server, mut origin, _) = live_channel(false);
            let cfg = LiveSessionConfig {
                segments_to_play: 6,
                poll_ticks: 20,
                refresh_retry: retry,
                ..Default::default()
            };
            run_live_session(&mut server, &mut origin, "chan", &cfg).unwrap()
        };
        let legacy = run(None);
        // The documented legacy-equivalent policy for poll_ticks = 20,
        // max_stale_refreshes = 64.
        let flat = run(Some(RetryPolicy {
            max_attempts: 65,
            base_backoff_ticks: 20,
            max_backoff_ticks: 20,
            jitter_ticks: 0,
            seed: 0,
        }));
        assert_eq!(legacy.total_ticks, flat.total_ticks);
        assert_eq!(legacy.stale_manifest_ticks, flat.stale_manifest_ticks);
        assert_eq!(legacy.manifest_refreshes, flat.manifest_refreshes);
        assert_eq!(legacy.segments.len(), flat.segments.len());
    }

    #[test]
    fn backoff_refresh_policy_gives_up_cleanly_through_an_endless_outage() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (mut server, mut origin, _) = live_channel(false);
        let mut edge = EdgeCache::new(EdgeConfig {
            mutable_ttl_ticks: 50,
            ..Default::default()
        });
        let cfg = LiveSessionConfig {
            base: SessionConfig {
                max_rung: Some(0),
                ..Default::default()
            },
            segments_to_play: 4,
            poll_ticks: 20,
            ..Default::default()
        };
        run_live_session_via_edge(&mut server, &mut origin, &mut edge, "chan", &cfg)
            .expect("first viewer warms the edge");
        edge.set_origin_up(false);
        let tune_in = origin.publish_tick(origin.live_seq().unwrap());
        let err = run_live_session_via_edge(
            &mut server,
            &mut origin,
            &mut edge,
            "chan",
            &LiveSessionConfig {
                start_tick: tune_in,
                refresh_retry: Some(RetryPolicy::standard(11)),
                ..cfg
            },
        )
        .unwrap_err();
        assert_eq!(err, SessionError::LiveStalled);
    }

    #[test]
    fn live_session_against_a_vod_manifest_is_refused() {
        let (server, _) = published(false);
        let (_, mut origin, _) = live_channel(false);
        let mut server = server;
        assert_eq!(
            run_live_session(
                &mut server,
                &mut origin,
                "movie",
                &LiveSessionConfig::default()
            )
            .unwrap_err(),
            SessionError::NotLive
        );
    }

    #[test]
    fn abr_controller_picks_by_budget() {
        let (server, _) = published(false);
        let bytes = fetch_traced(
            &server,
            "movie/manifest",
            TcpConfig::default(),
            LinkConfig::default(),
            None,
            0,
            9,
        )
        .unwrap()
        .data;
        let manifest = Manifest::from_bytes(&bytes).unwrap();
        let mut abr = AbrController::new(0.5, 1.0);
        assert_eq!(abr.pick(&manifest, 0, None), 0, "no history -> lowest");
        abr.observe(1e9, 1.0); // absurdly fast
        assert_eq!(abr.pick(&manifest, 0, None), manifest.rungs.len() - 1);
        assert_eq!(abr.pick(&manifest, 0, Some(1)), 1, "cap respected");
        let mut slow = AbrController::new(0.5, 1.0);
        slow.observe(1.0, 1e9); // glacial
        assert_eq!(slow.pick(&manifest, 0, None), 0);
    }
}
