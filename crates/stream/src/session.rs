//! A viewer session: fetch → jitter/playout buffer → ABR control.
//!
//! The session fetches the manifest (and, for sealed titles, the
//! license) over `netstack::fetch`, then pulls segments through the
//! reliable TCP-lite transport across a lossy link. A playout buffer
//! drains in real (simulated-tick) time while the next segment
//! downloads; the throughput-driven [`AbrController`] picks the highest
//! rung the measured bandwidth sustains. The report records exactly the
//! quality-of-experience trio streaming systems are judged on: startup
//! delay, rebuffer events, and rung switches.

use drm::cipher::XteaCtr;
use drm::license::{License, LicenseParseError};
use netstack::fetch::{fetch, ContentServer, FetchError};
use netstack::link::LinkConfig;
use netstack::tcplite::TcpConfig;

use crate::edge::EdgeCache;
use crate::ladder::{LadderError, Manifest};
use crate::segment::{demux_segment, Segment};

/// Throughput-driven rung selection, shared by the single-session path
/// and the many-session load simulator.
#[derive(Debug, Clone)]
pub struct AbrController {
    /// EWMA smoothing factor for throughput samples (0..=1].
    pub alpha: f64,
    /// Headroom: a rung is sustainable when its required rate is below
    /// `safety * estimate`.
    pub safety: f64,
    estimate_bits_per_tick: Option<f64>,
}

impl AbrController {
    /// A controller with no throughput history.
    #[must_use]
    pub fn new(alpha: f64, safety: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0, "bad alpha");
        assert!(safety > 0.0, "bad safety");
        Self {
            alpha,
            safety,
            estimate_bits_per_tick: None,
        }
    }

    /// The current bandwidth estimate, if any sample arrived yet.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        self.estimate_bits_per_tick
    }

    /// Feeds one download sample.
    pub fn observe(&mut self, bits: f64, ticks: f64) {
        if ticks <= 0.0 {
            return;
        }
        let sample = bits / ticks;
        self.estimate_bits_per_tick = Some(match self.estimate_bits_per_tick {
            None => sample,
            Some(e) => self.alpha * sample + (1.0 - self.alpha) * e,
        });
    }

    /// Picks the highest sustainable rung for segment `seg` (rung 0 when
    /// no throughput has been observed yet — start safe, switch up; also
    /// rung 0 for a manifest with no rungs, rather than underflowing).
    #[must_use]
    pub fn pick(&self, manifest: &Manifest, seg: usize, max_rung: Option<usize>) -> usize {
        if manifest.rungs.is_empty() {
            return 0;
        }
        let ceiling = max_rung
            .unwrap_or(manifest.rungs.len() - 1)
            .min(manifest.rungs.len() - 1);
        let Some(est) = self.estimate_bits_per_tick else {
            return 0;
        };
        let budget = est * self.safety;
        (0..=ceiling)
            .rev()
            .find(|&r| {
                manifest.rungs[r].required_bits_per_tick(seg, manifest.ticks_per_frame) <= budget
            })
            .unwrap_or(0)
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Transport configuration.
    pub tcp: TcpConfig,
    /// Access-link conditions.
    pub link: LinkConfig,
    /// Seed for the link's loss process.
    pub seed: u64,
    /// Segments buffered before playback starts (the jitter buffer).
    pub startup_segments: usize,
    /// ABR headroom.
    pub safety: f64,
    /// ABR throughput smoothing.
    pub ewma_alpha: f64,
    /// Cap (or pin, with `Some(0)`) the reachable rung.
    pub max_rung: Option<usize>,
    /// License verification key for sealed titles.
    pub verification_key: Option<Vec<u8>>,
}

impl Default for SessionConfig {
    /// Default transport and link, 2-segment jitter buffer, 0.7 safety,
    /// 0.4 EWMA, free rung choice, no DRM.
    fn default() -> Self {
        Self {
            tcp: TcpConfig::default(),
            link: LinkConfig::default(),
            seed: 1,
            startup_segments: 2,
            safety: 0.7,
            ewma_alpha: 0.4,
            max_rung: None,
            verification_key: None,
        }
    }
}

/// Errors running a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// A fetch failed at the transport or server level.
    Fetch(FetchError),
    /// The manifest did not parse.
    Manifest(&'static str),
    /// The title is sealed but no verification key was configured.
    SealedWithoutKey,
    /// The license failed verification.
    License(LicenseParseError),
    /// A segment arrived damaged (impossible over the reliable
    /// transport; kept for lossy/datagram delivery paths).
    DamagedSegment(usize),
}

impl core::fmt::Display for SessionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionError::Fetch(e) => write!(f, "fetch failed: {e}"),
            SessionError::Manifest(what) => write!(f, "bad manifest: {what}"),
            SessionError::SealedWithoutKey => {
                f.write_str("title is sealed and no verification key is configured")
            }
            SessionError::License(e) => write!(f, "license rejected: {e:?}"),
            SessionError::DamagedSegment(i) => write!(f, "segment {i} arrived damaged"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<FetchError> for SessionError {
    fn from(e: FetchError) -> Self {
        SessionError::Fetch(e)
    }
}

/// One fetched segment's record.
#[derive(Debug, Clone)]
pub struct SegmentRecord {
    /// Rung the controller chose.
    pub rung: usize,
    /// Ticks the fetch took.
    pub ticks: u64,
    /// Wire bits delivered.
    pub bits: u64,
    /// Source frames carried.
    pub frames: usize,
    /// The demuxed (and unsealed) segment.
    pub segment: Segment,
}

/// What one session experienced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Ticks from session start to first rendered frame.
    pub startup_delay_ticks: u64,
    /// Post-startup playback stalls.
    pub rebuffer_events: u32,
    /// Total stalled ticks.
    pub rebuffer_ticks: u64,
    /// Rung changes after the first segment.
    pub rung_switches: u32,
    /// Per-segment records, in playout order.
    pub segments: Vec<SegmentRecord>,
    /// Total simulated ticks (manifest + license + every segment fetch).
    pub total_ticks: u64,
    /// Total wire bits delivered.
    pub delivered_bits: u64,
}

impl SessionReport {
    /// Mean rung index across fetched segments.
    #[must_use]
    pub fn mean_rung(&self) -> f64 {
        if self.segments.is_empty() {
            0.0
        } else {
            self.segments.iter().map(|s| s.rung as f64).sum::<f64>() / self.segments.len() as f64
        }
    }

    /// Delivered bits per tick over the whole session.
    #[must_use]
    pub fn goodput_bits_per_tick(&self) -> f64 {
        self.delivered_bits as f64 / self.total_ticks.max(1) as f64
    }
}

/// Runs one viewer session against a published title.
///
/// # Errors
///
/// Returns [`SessionError`] on transport failure, manifest/license
/// problems, or a damaged segment.
pub fn run_session(
    server: &ContentServer,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    run_session_with(
        |name, leg| {
            let r = fetch(
                server,
                name,
                config.tcp,
                config.link,
                config.seed.wrapping_add(leg),
            )?;
            Ok((r.data, r.ticks))
        },
        title,
        config,
    )
}

/// Runs one viewer session through an edge cache: every object —
/// manifest, license, segments — is fetched from the edge, which fills
/// from `origin` on miss. The session code is identical to the direct
/// path; only the fetch route changes, which is the point: the edge
/// tier is transparent to viewers.
///
/// # Errors
///
/// Returns [`SessionError`] on transport failure (either leg),
/// manifest/license problems, an unreachable origin on a cold object,
/// or a damaged segment.
pub fn run_session_via_edge(
    origin: &ContentServer,
    edge: &mut EdgeCache,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    run_session_with(
        |name, leg| {
            edge.fetch_through(
                origin,
                name,
                config.tcp,
                config.link,
                config.seed.wrapping_add(leg),
            )
        },
        title,
        config,
    )
}

/// The session engine, generic over how objects are fetched. `leg`
/// numbers each fetch (manifest 0, license 1, segment `i` at `2 + i`)
/// so routes can derive per-leg seeds.
fn run_session_with(
    mut fetch_object: impl FnMut(&str, u64) -> Result<(Vec<u8>, u64), FetchError>,
    title: &str,
    config: &SessionConfig,
) -> Result<SessionReport, SessionError> {
    let mut clock = 0u64;
    let mut delivered_bits = 0u64;
    let mut fetch_object = |name: &str, leg: u64| -> Result<(Vec<u8>, u64), SessionError> {
        Ok(fetch_object(name, leg)?)
    };

    // 1. Manifest.
    let (bytes, ticks) = fetch_object(&Manifest::manifest_object(title), 0)?;
    clock += ticks;
    delivered_bits += (bytes.len() * 8) as u64;
    let manifest = Manifest::from_bytes(&bytes).map_err(|e| match e {
        LadderError::Manifest(what) => SessionError::Manifest(what),
        _ => SessionError::Manifest("unparseable"),
    })?;

    // 2. License, when the title is sealed.
    let content_key = if manifest.sealed {
        let key = config
            .verification_key
            .as_deref()
            .ok_or(SessionError::SealedWithoutKey)?;
        let (bytes, ticks) = fetch_object(&Manifest::license_object(title), 1)?;
        clock += ticks;
        delivered_bits += (bytes.len() * 8) as u64;
        let license = License::unseal(&bytes, key).map_err(SessionError::License)?;
        Some(license.content_key)
    } else {
        None
    };

    // 3. Segments, ABR-controlled, through the playout buffer model.
    let mut abr = AbrController::new(config.ewma_alpha, config.safety);
    let n = manifest.segment_count();
    let startup_after = config.startup_segments.clamp(1, n.max(1));
    let mut records: Vec<SegmentRecord> = Vec::with_capacity(n);
    let mut buffer_ticks = 0i64;
    let mut playing = false;
    let mut startup_delay = 0u64;
    let mut rebuffer_events = 0u32;
    let mut rebuffer_ticks = 0u64;
    let mut rung_switches = 0u32;

    for seg in 0..n {
        let rung = abr.pick(&manifest, seg, config.max_rung);
        if let Some(prev) = records.last() {
            if prev.rung != rung {
                rung_switches += 1;
            }
        }
        let entry = &manifest.rungs[rung].segments[seg];
        let (mut bytes, ticks) = fetch_object(&manifest.segment_object(rung, seg), 2 + seg as u64)?;
        clock += ticks;
        delivered_bits += (bytes.len() * 8) as u64;
        abr.observe((bytes.len() * 8) as f64, ticks as f64);

        // Playout drains while the fetch was in flight.
        if playing {
            buffer_ticks -= ticks as i64;
            if buffer_ticks < 0 {
                rebuffer_events += 1;
                rebuffer_ticks += (-buffer_ticks) as u64;
                buffer_ticks = 0;
            }
        }

        if let Some(key) = content_key.as_ref() {
            XteaCtr::new(key, entry.nonce).apply(&mut bytes);
        }
        let segment = demux_segment(&bytes);
        if segment.video_es.is_none() {
            return Err(SessionError::DamagedSegment(seg));
        }
        buffer_ticks += (entry.frames as u64 * manifest.ticks_per_frame) as i64;
        records.push(SegmentRecord {
            rung,
            ticks,
            bits: (bytes.len() * 8) as u64,
            frames: entry.frames,
            segment,
        });
        if !playing && records.len() >= startup_after {
            playing = true;
            startup_delay = clock;
        }
    }

    Ok(SessionReport {
        startup_delay_ticks: startup_delay,
        rebuffer_events,
        rebuffer_ticks,
        rung_switches,
        segments: records,
        total_ticks: clock,
        delivered_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{encode_ladder, publish_ladder, seal_ladder, LadderConfig};
    use drm::playback::LicenseAuthority;
    use drm::{Right, TitleId};
    use video::synth::SequenceGen;

    fn published(seal: bool) -> (ContentServer, LicenseAuthority) {
        let frames = SequenceGen::new(12).panning_sequence(48, 32, 12, 1, 0);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        };
        let mut ladder = encode_ladder("movie", &frames, &cfg).unwrap();
        let mut authority = LicenseAuthority::new(b"studio".to_vec());
        let title_id = TitleId(1);
        authority.register_title(title_id);
        let mut server = ContentServer::new();
        if seal {
            seal_ladder(&mut ladder, &authority, title_id);
            server.publish(
                Manifest::license_object("movie"),
                authority.issue(title_id, vec![Right::Play]),
            );
        }
        publish_ladder(&mut server, &ladder);
        (server, authority)
    }

    #[test]
    fn clear_session_plays_every_segment() {
        let (server, _) = published(false);
        let report = run_session(&server, "movie", &SessionConfig::default()).unwrap();
        assert_eq!(report.segments.len(), 3);
        assert!(report.startup_delay_ticks > 0);
        assert_eq!(report.rebuffer_events, 0, "clean fast link must not stall");
        // Every fetched segment decodes.
        for rec in &report.segments {
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
        }
    }

    #[test]
    fn abr_climbs_on_a_fast_link() {
        let (server, _) = published(false);
        let report = run_session(&server, "movie", &SessionConfig::default()).unwrap();
        assert_eq!(
            report.segments[0].rung, 0,
            "sessions start on the safe rung"
        );
        assert!(
            report.segments.last().unwrap().rung > 0,
            "fast link should let the controller switch up"
        );
        assert!(report.rung_switches >= 1);
    }

    #[test]
    fn pinned_rung_never_switches() {
        let (server, _) = published(false);
        let cfg = SessionConfig {
            max_rung: Some(0),
            ..Default::default()
        };
        let report = run_session(&server, "movie", &cfg).unwrap();
        assert!(report.segments.iter().all(|s| s.rung == 0));
        assert_eq!(report.rung_switches, 0);
    }

    #[test]
    fn sealed_title_requires_key_and_then_plays() {
        let (server, authority) = published(true);
        let err = run_session(&server, "movie", &SessionConfig::default()).unwrap_err();
        assert_eq!(err, SessionError::SealedWithoutKey);
        let cfg = SessionConfig {
            verification_key: Some(authority.verification_key().to_vec()),
            ..Default::default()
        };
        let report = run_session(&server, "movie", &cfg).unwrap();
        for rec in &report.segments {
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
        }
    }

    #[test]
    fn wrong_verification_key_is_refused() {
        let (server, _) = published(true);
        let cfg = SessionConfig {
            verification_key: Some(b"impostor".to_vec()),
            ..Default::default()
        };
        assert!(matches!(
            run_session(&server, "movie", &cfg).unwrap_err(),
            SessionError::License(_)
        ));
    }

    #[test]
    fn missing_title_is_a_fetch_error() {
        let (server, _) = published(false);
        assert!(matches!(
            run_session(&server, "nope", &SessionConfig::default()).unwrap_err(),
            SessionError::Fetch(FetchError::Server(_))
        ));
    }

    #[test]
    fn lossy_link_still_plays_and_is_deterministic() {
        let (server, _) = published(false);
        let cfg = SessionConfig {
            link: LinkConfig::default().with_loss(0.1),
            max_rung: Some(0),
            ..Default::default()
        };
        let a = run_session(&server, "movie", &cfg).unwrap();
        let b = run_session(&server, "movie", &cfg).unwrap();
        assert_eq!(a.total_ticks, b.total_ticks);
        assert_eq!(a.startup_delay_ticks, b.startup_delay_ticks);
        assert_eq!(a.segments.len(), 3);
    }

    #[test]
    fn session_via_edge_plays_and_warms_the_cache() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (origin, authority) = published(true);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let cfg = SessionConfig {
            verification_key: Some(authority.verification_key().to_vec()),
            ..Default::default()
        };
        let cold = run_session_via_edge(&origin, &mut edge, "movie", &cfg).unwrap();
        assert_eq!(cold.segments.len(), 3);
        assert!(edge.stats().misses > 0);
        for rec in &cold.segments {
            let dec = video::decode(rec.segment.video_es.as_ref().unwrap()).unwrap();
            assert_eq!(dec.frames.len(), rec.frames);
        }
        // A second viewer pinned to the same rungs rides the warm cache:
        // no new origin bytes, and a faster session.
        let pinned = SessionConfig {
            max_rung: Some(0),
            ..cfg.clone()
        };
        let first_origin_bytes = edge.stats().origin_bytes;
        let a = run_session_via_edge(&origin, &mut edge, "movie", &pinned).unwrap();
        let again_origin = edge.stats().origin_bytes;
        let b = run_session_via_edge(&origin, &mut edge, "movie", &pinned).unwrap();
        assert_eq!(edge.stats().origin_bytes, again_origin);
        assert!(a.total_ticks >= b.total_ticks || again_origin == first_origin_bytes);
        assert!(b.total_ticks < cold.total_ticks);
    }

    #[test]
    fn warm_edge_serves_through_origin_outage() {
        use crate::edge::{EdgeCache, EdgeConfig};

        let (origin, _) = published(false);
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let cfg = SessionConfig {
            max_rung: Some(0),
            ..Default::default()
        };
        run_session_via_edge(&origin, &mut edge, "movie", &cfg).unwrap();
        edge.set_origin_up(false);
        let report = run_session_via_edge(&origin, &mut edge, "movie", &cfg).unwrap();
        assert_eq!(report.segments.len(), 3);
        assert_eq!(report.rebuffer_events, 0);
        // A cold title during the outage fails cleanly.
        assert!(matches!(
            run_session_via_edge(&origin, &mut edge, "nope", &cfg).unwrap_err(),
            SessionError::Fetch(FetchError::Server(_))
        ));
    }

    #[test]
    fn abr_controller_picks_by_budget() {
        let (server, _) = published(false);
        let bytes = fetch(
            &server,
            "movie/manifest",
            TcpConfig::default(),
            LinkConfig::default(),
            9,
        )
        .unwrap()
        .data;
        let manifest = Manifest::from_bytes(&bytes).unwrap();
        let mut abr = AbrController::new(0.5, 1.0);
        assert_eq!(abr.pick(&manifest, 0, None), 0, "no history -> lowest");
        abr.observe(1e9, 1.0); // absurdly fast
        assert_eq!(abr.pick(&manifest, 0, None), manifest.rungs.len() - 1);
        assert_eq!(abr.pick(&manifest, 0, Some(1)), 1, "cap respected");
        let mut slow = AbrController::new(0.5, 1.0);
        slow.observe(1.0, 1e9); // glacial
        assert_eq!(slow.pick(&manifest, 0, None), 0);
    }
}
