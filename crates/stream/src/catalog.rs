//! Multi-title catalogs with Zipf popularity.
//!
//! Everything before this module streamed exactly one title. A CDN's
//! economics, though, are set by the *catalog*: caches are sized
//! against a working set of many titles whose request frequencies
//! follow a heavy-tailed (Zipf) law, and admission policies only earn
//! their keep when a long tail of one-hit wonders competes with a hot
//! head for cache space.
//!
//! [`Catalog`] is a list of per-title [`Manifest`]s (each title can be
//! sealed under its own license key — the manifests are independent)
//! plus a Zipf exponent. [`ZipfSampler`] turns a uniform 64-bit hash
//! into a title rank, so per-session title choice stays a pure function
//! of the load seed and the session index: the calendar engine draws
//! *no extra RNG* for single-title catalogs, which keeps the one-title
//! configuration bit-identical to the pre-catalog engine.

use crate::ladder::Manifest;

/// A seeded Zipf(s) popularity sampler over `n` ranks: rank `k`
/// (0-based) is drawn with probability `(k+1)^-s / H_{n,s}`. Sampling
/// inverts the CDF with a binary search on a 53-bit uniform derived
/// from a caller-supplied hash — no internal RNG state, so the same
/// hash always yields the same rank.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[k]` = P(rank <= k); the last entry is pinned to exactly 1.
    cdf: Vec<f64>,
    /// `probs[k]` = P(rank == k), the analytic law tests compare to.
    probs: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `titles` ranks with exponent `s` (`s = 0` is
    /// uniform; larger `s` concentrates mass on the head).
    ///
    /// # Panics
    ///
    /// Panics when `titles` is zero or `s` is not finite.
    #[must_use]
    pub fn new(titles: usize, s: f64) -> Self {
        assert!(titles > 0, "a Zipf sampler needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut probs: Vec<f64> = (1..=titles).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(titles);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        // Guard against summation rounding leaving the tail unreachable
        // (or a hash of ~1.0 falling off the end).
        *cdf.last_mut().expect("titles > 0") = 1.0;
        Self { cdf, probs }
    }

    /// Ranks in the sampler.
    #[must_use]
    pub fn titles(&self) -> usize {
        self.probs.len()
    }

    /// The analytic probability of rank `k` (0-based).
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        self.probs[rank]
    }

    /// Maps a uniform 64-bit hash to a rank by CDF inversion. The top
    /// 53 bits become a uniform in `[0, 1)` — the full precision an
    /// `f64` mantissa can hold.
    #[must_use]
    pub fn sample_hash(&self, hash: u64) -> usize {
        let u = (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// A catalog of titles: per-title manifests (rank order *is*
/// popularity order — title 0 is the head) and the Zipf exponent that
/// spreads sessions across them.
#[derive(Debug, Clone)]
pub struct Catalog {
    titles: Vec<Manifest>,
    /// Zipf popularity exponent across titles. Ignored for a
    /// single-title catalog (there is nothing to sample).
    pub zipf_s: f64,
}

impl Catalog {
    /// The degenerate one-title catalog — exactly the pre-catalog
    /// engine's input.
    #[must_use]
    pub fn single(manifest: Manifest) -> Self {
        Self {
            titles: vec![manifest],
            zipf_s: 1.0,
        }
    }

    /// A catalog over explicit per-title manifests, most popular first.
    ///
    /// # Panics
    ///
    /// Panics when `titles` is empty or `zipf_s` is not finite.
    #[must_use]
    pub fn new(titles: Vec<Manifest>, zipf_s: f64) -> Self {
        assert!(!titles.is_empty(), "a catalog needs at least one title");
        assert!(zipf_s.is_finite(), "Zipf exponent must be finite");
        Self { titles, zipf_s }
    }

    /// A synthetic catalog of `titles` clones of `base`, renamed
    /// `"{base.title}_{rank}"` so object names never collide across
    /// titles. This is the bench-scale constructor: one encode pass,
    /// many titles.
    ///
    /// # Panics
    ///
    /// Panics when `titles` is zero or `zipf_s` is not finite.
    #[must_use]
    pub fn synthesize(base: &Manifest, titles: usize, zipf_s: f64) -> Self {
        assert!(titles > 0, "a catalog needs at least one title");
        let titles = (0..titles)
            .map(|rank| {
                let mut m = base.clone();
                m.title = format!("{}_{rank}", base.title);
                m
            })
            .collect();
        Self::new(titles, zipf_s)
    }

    /// Titles in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.titles.len()
    }

    /// Always `false` (the constructors reject empty catalogs); here
    /// for the conventional `len`/`is_empty` pair.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.titles.is_empty()
    }

    /// The manifest of the title at popularity rank `rank`.
    #[must_use]
    pub fn title(&self, rank: usize) -> &Manifest {
        &self.titles[rank]
    }

    /// All manifests, most popular first.
    #[must_use]
    pub fn titles(&self) -> &[Manifest] {
        &self.titles
    }

    /// The catalog's working-set size: total segment bytes across every
    /// rung of every title (what a cache would hold if it held
    /// everything). Cache-pressure experiments size capacities as a
    /// fraction of this.
    #[must_use]
    pub fn working_set_bytes(&self) -> u64 {
        self.titles
            .iter()
            .flat_map(|m| &m.rungs)
            .flat_map(|r| &r.segments)
            .map(|s| s.bytes as u64)
            .sum()
    }

    /// The popularity sampler — `None` for a single-title catalog,
    /// where title choice is constant and must draw nothing (the
    /// bit-identity contract with the single-title engine).
    #[must_use]
    pub fn sampler(&self) -> Option<ZipfSampler> {
        (self.titles.len() > 1).then(|| ZipfSampler::new(self.titles.len(), self.zipf_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::splitmix64;

    fn tiny_manifest(title: &str) -> Manifest {
        use crate::ladder::{RungInfo, SegmentEntry};
        Manifest {
            title: title.to_string(),
            ticks_per_frame: 1,
            sealed: false,
            live: None,
            rungs: vec![RungInfo {
                target_bits_per_frame: 1000.0,
                segments: vec![SegmentEntry {
                    name: "seg0".to_string(),
                    bytes: 100,
                    frames: 4,
                    nonce: 0,
                }],
            }],
        }
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(64, 1.1);
        let sum: f64 = (0..64).map(|k| z.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for k in 1..64 {
            assert!(z.probability(k) < z.probability(k - 1));
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sample_covers_extremes() {
        let z = ZipfSampler::new(8, 1.0);
        assert_eq!(z.sample_hash(0), 0);
        assert_eq!(z.sample_hash(u64::MAX), 7);
    }

    #[test]
    fn zipf_empirical_head_matches_analytic_law() {
        // Satellite: a seeded sweep's empirical head frequencies match
        // the analytic Zipf law within tolerance.
        let z = ZipfSampler::new(32, 1.0);
        let n = 200_000u64;
        let mut counts = vec![0u64; 32];
        for i in 0..n {
            counts[z.sample_hash(splitmix64(0x21BF_5EED ^ i))] += 1;
        }
        for (rank, &count) in counts.iter().enumerate().take(4) {
            let empirical = count as f64 / n as f64;
            let analytic = z.probability(rank);
            assert!(
                (empirical - analytic).abs() < 0.01,
                "rank {rank}: empirical {empirical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn single_title_catalog_has_no_sampler() {
        let c = Catalog::single(tiny_manifest("t"));
        assert!(c.sampler().is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn synthesized_titles_get_distinct_names() {
        let c = Catalog::synthesize(&tiny_manifest("base"), 4, 1.0);
        assert_eq!(c.len(), 4);
        assert_eq!(c.title(0).title, "base_0");
        assert_eq!(c.title(3).title, "base_3");
        assert_eq!(c.working_set_bytes(), 400);
        assert!(c.sampler().is_some());
    }
}
