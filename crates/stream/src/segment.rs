//! Segment assembly: one GOP-aligned media segment as a transport stream.
//!
//! A segment carries up to three units: a frame index on [`META_PID`]
//! (built from the encoder's per-frame kind/offset metadata — see
//! [`EncodedSequence::frame_bit_spans`]), the video elementary stream on
//! [`VIDEO_PID`], and optionally an audio elementary stream on
//! [`AUDIO_PID`]. Video and audio packets are interleaved proportionally
//! so neither stream starves a small receive buffer.

use video::encoder::{EncodedSequence, FrameKind};

use crate::ts::{
    demux_wire, to_wire, DemuxReport, TsMux, TsPacket, AUDIO_PID, META_PID, VIDEO_PID,
};

/// One frame's entry in the segment index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameIndexEntry {
    /// `true` for an intra (I) frame.
    pub intra: bool,
    /// Exact payload bits of the frame in the elementary stream.
    pub bits: u32,
}

/// Builds the index from an encoded sequence's frame metadata.
#[must_use]
pub fn frame_index(seq: &EncodedSequence) -> Vec<FrameIndexEntry> {
    seq.frames
        .iter()
        .map(|f| FrameIndexEntry {
            intra: f.kind == FrameKind::Intra,
            bits: f.bits as u32,
        })
        .collect()
}

fn index_unit(index: &[FrameIndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + index.len() * 5);
    out.extend_from_slice(&(index.len() as u16).to_be_bytes());
    for e in index {
        out.push(u8::from(e.intra));
        out.extend_from_slice(&e.bits.to_be_bytes());
    }
    out
}

fn parse_index_unit(unit: &[u8]) -> Option<Vec<FrameIndexEntry>> {
    if unit.len() < 2 {
        return None;
    }
    let n = u16::from_be_bytes([unit[0], unit[1]]) as usize;
    if unit.len() != 2 + n * 5 {
        return None;
    }
    Some(
        unit[2..]
            .chunks_exact(5)
            .map(|c| FrameIndexEntry {
                intra: c[0] != 0,
                bits: u32::from_be_bytes([c[1], c[2], c[3], c[4]]),
            })
            .collect(),
    )
}

/// Muxes one segment: index unit first, then video and audio packets
/// interleaved proportionally.
///
/// # Panics
///
/// Panics if the sequence has no frames (an empty segment has no
/// meaning on the wire).
#[must_use]
pub fn mux_segment(seq: &EncodedSequence, audio_es: Option<&[u8]>) -> Vec<TsPacket> {
    assert!(!seq.frames.is_empty(), "cannot mux an empty segment");
    let mut mux = TsMux::new();
    let mut out = mux.packetize(META_PID, &index_unit(&frame_index(seq)));
    let video = mux.packetize(VIDEO_PID, &seq.bytes);
    match audio_es {
        None => out.extend(video),
        Some(audio) => {
            let audio = mux.packetize(AUDIO_PID, audio);
            // Proportional interleave: after every `ratio` video packets,
            // one audio packet, preserving per-PID order.
            let ratio = (video.len() / audio.len().max(1)).max(1);
            let mut a = audio.into_iter();
            for (i, v) in video.into_iter().enumerate() {
                out.push(v);
                if (i + 1) % ratio == 0 {
                    out.extend(a.next());
                }
            }
            out.extend(a);
        }
    }
    out
}

/// Muxes a segment straight to wire bytes.
#[must_use]
pub fn mux_segment_wire(seq: &EncodedSequence, audio_es: Option<&[u8]>) -> Vec<u8> {
    to_wire(&mux_segment(seq, audio_es))
}

/// A demuxed segment. Missing fields mean the corresponding unit was
/// lost or damaged in transit; the [`DemuxReport`] says why.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The frame index, if its unit survived.
    pub index: Option<Vec<FrameIndexEntry>>,
    /// The video elementary stream, if it survived.
    pub video_es: Option<Vec<u8>>,
    /// The audio elementary stream, if present and surviving.
    pub audio_es: Option<Vec<u8>>,
    /// Transport-level statistics.
    pub report: DemuxReport,
}

impl Segment {
    /// Frames promised by the index (0 when the index was lost).
    #[must_use]
    pub fn indexed_frames(&self) -> usize {
        self.index.as_ref().map_or(0, Vec::len)
    }
}

/// Demuxes one segment from wire bytes.
#[must_use]
pub fn demux_segment(wire: &[u8]) -> Segment {
    let report = demux_wire(wire);
    let first = |pid: u16| report.units_on(pid).first().cloned();
    Segment {
        index: first(META_PID).and_then(|u| parse_index_unit(&u)),
        video_es: first(VIDEO_PID),
        audio_es: first(AUDIO_PID),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use video::encoder::{Encoder, EncoderConfig};
    use video::synth::SequenceGen;

    fn encoded(n: usize) -> EncodedSequence {
        let frames = SequenceGen::new(21).panning_sequence(48, 32, n, 1, 0);
        Encoder::new(EncoderConfig {
            gop: 4,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap()
    }

    #[test]
    fn av_segment_round_trips_bit_identically() {
        let seq = encoded(6);
        let audio: Vec<u8> = (0..900).map(|i| (i * 7) as u8).collect();
        let wire = mux_segment_wire(&seq, Some(&audio));
        let seg = demux_segment(&wire);
        assert!(!seg.report.loss_detected());
        assert_eq!(seg.video_es.as_deref(), Some(seq.bytes.as_slice()));
        assert_eq!(seg.audio_es.as_deref(), Some(audio.as_slice()));
        let index = seg.index.unwrap();
        assert_eq!(index.len(), 6);
        assert!(index[0].intra && index[4].intra);
        assert!(!index[1].intra);
        for (e, f) in index.iter().zip(&seq.frames) {
            assert_eq!(e.bits as usize, f.bits);
        }
    }

    #[test]
    fn video_only_segment_round_trips() {
        let seq = encoded(4);
        let seg = demux_segment(&mux_segment_wire(&seq, None));
        assert!(!seg.report.loss_detected());
        assert_eq!(seg.video_es.as_deref(), Some(seq.bytes.as_slice()));
        assert!(seg.audio_es.is_none());
        assert_eq!(seg.indexed_frames(), 4);
    }

    #[test]
    fn decoded_segment_plays() {
        let seq = encoded(4);
        let seg = demux_segment(&mux_segment_wire(&seq, None));
        let dec = video::decode(&seg.video_es.unwrap()).unwrap();
        assert_eq!(dec.frames.len(), 4);
    }

    #[test]
    fn lost_video_packet_keeps_index_and_audio() {
        let seq = encoded(6);
        let audio = vec![9u8; 400];
        let mut packets = mux_segment(&seq, Some(&audio));
        let vid_pos = packets
            .iter()
            .position(|p| p.pid() == VIDEO_PID && !p.pusi())
            .unwrap();
        packets.remove(vid_pos);
        let seg = demux_segment(&to_wire(&packets));
        assert!(seg.report.loss_detected());
        assert!(seg.video_es.is_none(), "damaged video unit must be dropped");
        assert_eq!(seg.audio_es.as_deref(), Some(audio.as_slice()));
        assert_eq!(seg.indexed_frames(), 6);
    }
}
