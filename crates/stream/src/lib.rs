//! # `mmstream` — transport mux + ABR segment delivery
//!
//! The delivery layer between the codecs and the netstack, motivated by
//! Wolf §7's networked consumer devices ("content access" over small IP
//! stacks) and the ROADMAP's per-server scale goal:
//!
//! * [`ts`] — fixed-188-byte TS-style packets with PIDs, continuity
//!   counters, and per-packet CRC-32; bit-identical demux on a clean
//!   link, gap detection and damaged-unit discard on a lossy one.
//! * [`segment`] — one GOP-aligned segment as a transport stream: frame
//!   index (from the encoder's per-frame kind/offset metadata), video
//!   ES, optional interleaved audio ES.
//! * [`ladder`] — the ABR ladder: one source encoded at several rate
//!   targets via `video::rate`, closed-GOP segments, a plain-text
//!   [`ladder::Manifest`], optional XTEA-CTR sealing (§6), a `mediafs`
//!   segment store, content-server publishing — and the live/linear
//!   head end, [`ladder::LiveOrigin`], which publishes a pre-encoded
//!   wheel one segment per tick interval under a rolling DVR window
//!   and a versioned live manifest.
//! * [`headend`] — the bridge back to the source paper's platform
//!   model: folds a measured ladder (per-rung encoder stage tallies,
//!   real segment byte volumes) into the staged
//!   `mpsoc::headend::HeadendSpec` whose task graph maps the
//!   capture → per-rung encode → mux → seal → publish pipeline across
//!   MPSoC platforms, while the same per-rung stages execute as
//!   [`ladder::encode_rung`] work units on an `mmpool` worker pool
//!   ([`ladder::encode_ladder_on`], bit-identical to the sequential
//!   encode for any worker count).
//! * [`session`] — a viewer: manifest/license fetch, segment fetches
//!   over `netstack::fetch`/`tcplite` across lossy links, a playout
//!   buffer, and a throughput-driven ABR controller; reports startup
//!   delay, rebuffer events, and rung switches. Live viewers
//!   ([`session::run_live_session`]) additionally refresh the manifest,
//!   stall on staleness, and skip content lost to DVR expiry.
//! * [`serve`] — a deterministic fluid simulator interleaving thousands
//!   of concurrent sessions against one segment server, measuring the
//!   capacity knee where per-session quality starts to collapse. Load
//!   is a *process*: Poisson-style arrivals/departures and flash-crowd
//!   ramps ([`serve::ChurnConfig`]), plus live publish/expiry gates
//!   ([`serve::LiveConfig`]), with the static VOD population as the
//!   exact zero-churn special case.
//! * [`edge`] — the CDN-style edge-cache tier: N edges with bounded LRU
//!   segment caches and request coalescing in front of the origin, so
//!   serving capacity (and the knee) scales with edge count instead of
//!   being pinned to one uplink; live sessions fetch through an edge
//!   transparently, and the fluid simulator shards load across the
//!   tier.
//! * [`shield`] — the regional mid-tier of the hierarchical CDN:
//!   shield caches (edge → shield → origin) with their own LRU +
//!   generation-keyed fill coalescing, TinyLFU cache admission over a
//!   4-bit count-min [`FreqSketch`], and the per-tier [`TierStats`]
//!   rollup separating edge-local from true-origin offload.
//! * [`catalog`] — multi-title workloads: a [`Catalog`] of per-title
//!   manifests with a seeded Zipf popularity sampler
//!   ([`ZipfSampler`]); a single-title catalog is bit-identical to
//!   the pre-catalog engine.
//! * [`fault`] — deterministic resilience: a seeded [`FaultPlan`]
//!   (edge crashes with cold/warm restarts, origin flaps, link
//!   degradation) scheduled on the simulator's own event calendar, a
//!   consistent-hash failover ring ([`HashRing`]) that re-homes only a
//!   crashed edge's sessions, and the [`RetryPolicy`] backoff
//!   discipline shared by session fetches, live manifest refreshes,
//!   and edge origin fills. Faulted runs report a [`ResilienceStats`]
//!   ledger (MTTR, sessions impacted, re-warm fills); an empty plan is
//!   bit-identical to a plan-free run.
//!
//! # VOD vs live object lifecycles
//!
//! The two workload classes stress opposite ends of the cache:
//!
//! * **VOD**: every object (manifest, license, segment) is *immutable
//!   and permanent*. The whole ladder is published before the first
//!   viewer arrives; an edge may cache anything forever, so hit rate is
//!   bounded only by cache capacity ([`EdgeConfig`]'s
//!   `cache_capacity_bytes` is the knob that matters) and prewarming
//!   ([`EdgeTierConfig::prewarm`]) trivially yields total origin
//!   offload.
//! * **Live**: segments are *immutable but transient* — published once
//!   at the live edge (where every viewer wants them at the same
//!   instant, the thundering-herd case [`edge::FillTable`] coalesces),
//!   then expired when they leave the DVR window (the origin's purge,
//!   surfaced to caches as invalidations) — while the manifest is a
//!   long-lived *mutable* object that must be re-validated on a TTL
//!   (`EdgeConfig::mutable_ttl_ticks`, served stale-if-error through
//!   origin outages). Prewarming is mostly meaningless for live; what
//!   matters is coalescing one fill per newly published segment and a
//!   TTL long enough to absorb manifest polling but short enough to
//!   keep viewers near the live edge.
//!
//! # Example
//!
//! ```
//! use mmstream::ladder::{encode_ladder, publish_ladder, LadderConfig};
//! use mmstream::session::{run_session, SessionConfig};
//! use netstack::fetch::ContentServer;
//! use video::synth::SequenceGen;
//!
//! let frames = SequenceGen::new(2).panning_sequence(48, 32, 8, 1, 0);
//! let cfg = LadderConfig {
//!     targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
//!     gop: 4,
//!     ..Default::default()
//! };
//! let ladder = encode_ladder("demo", &frames, &cfg)?;
//! let mut server = ContentServer::new();
//! publish_ladder(&mut server, &ladder);
//! let report = run_session(&server, "demo", &SessionConfig::default()).unwrap();
//! assert_eq!(report.segments.len(), 2);
//! assert_eq!(report.rebuffer_events, 0);
//! # Ok::<(), mmstream::ladder::LadderError>(())
//! ```

pub(crate) mod calendar;
pub mod catalog;
pub mod edge;
pub mod fault;
pub mod headend;
pub mod ladder;
pub mod segment;
pub mod serve;
pub mod session;
pub mod shield;
pub mod ts;

pub use catalog::{Catalog, ZipfSampler};
pub use edge::{
    EdgeCache, EdgeConfig, EdgeStats, EdgeTierConfig, FillTable, HashRing, Lru, Sharding,
};
pub use fault::{FaultEvent, FaultPlan, ResilienceStats, RestartMode, RetryPolicy};
pub use headend::headend_spec;
pub use ladder::{
    encode_ladder, encode_ladder_on, encode_rung, publish_ladder, seal_ladder, Ladder,
    LadderConfig, LiveOrigin, LiveOriginConfig, LiveWindow, Manifest, PublishDelta, RungBuild,
    RungCost,
};
pub use segment::{demux_segment, mux_segment, mux_segment_wire, Segment};
pub use serve::{
    capacity_curve, capacity_curve_on, capacity_knee, capacity_knee_bisect,
    cdn_capacity_knee_bisect, edge_capacity_curve, edge_capacity_curve_on, edge_capacity_knee,
    edge_capacity_knee_bisect, faulted_edge_capacity_knee_bisect, live_edge_capacity_curve,
    live_edge_capacity_curve_on, live_edge_capacity_knee, live_edge_capacity_knee_bisect,
    simulate_cdn_load, simulate_cdn_load_faulted, simulate_edge_load, simulate_edge_load_faulted,
    simulate_live_cdn_load, simulate_live_cdn_load_faulted, simulate_live_edge_load,
    simulate_live_edge_load_faulted, simulate_live_load, simulate_load, CdnConfig, CdnLoadReport,
    ChurnConfig, EdgeLoadReport, FaultedEdgeLoadReport, LiveConfig, LiveEdgeLoadReport,
    LiveLoadReport, LiveStats, LoadConfig, LoadReport, ServerConfig,
};
pub use session::{
    run_live_session, run_live_session_via_edge, run_session, run_session_via_edge,
    run_session_via_tier, AbrController, AbrStrategy, JoinMode, LiveSessionConfig,
    LiveSessionReport, SessionConfig, SessionReport,
};
pub use shield::{
    AdmissionPolicy, FreqSketch, ShieldCache, ShieldConfig, TierStats, TinyLfuConfig,
};
pub use ts::{TsDemux, TsMux, TsPacket, TS_PACKET_LEN};
