//! # `mmstream` — transport mux + ABR segment delivery
//!
//! The delivery layer between the codecs and the netstack, motivated by
//! Wolf §7's networked consumer devices ("content access" over small IP
//! stacks) and the ROADMAP's per-server scale goal:
//!
//! * [`ts`] — fixed-188-byte TS-style packets with PIDs, continuity
//!   counters, and per-packet CRC-32; bit-identical demux on a clean
//!   link, gap detection and damaged-unit discard on a lossy one.
//! * [`segment`] — one GOP-aligned segment as a transport stream: frame
//!   index (from the encoder's per-frame kind/offset metadata), video
//!   ES, optional interleaved audio ES.
//! * [`ladder`] — the ABR ladder: one source encoded at several rate
//!   targets via `video::rate`, closed-GOP segments, a plain-text
//!   [`ladder::Manifest`], optional XTEA-CTR sealing (§6), a `mediafs`
//!   segment store, and content-server publishing.
//! * [`session`] — a viewer: manifest/license fetch, segment fetches
//!   over `netstack::fetch`/`tcplite` across lossy links, a playout
//!   buffer, and a throughput-driven ABR controller; reports startup
//!   delay, rebuffer events, and rung switches.
//! * [`serve`] — a deterministic fluid simulator interleaving thousands
//!   of concurrent sessions against one segment server, measuring the
//!   capacity knee where per-session quality starts to collapse.
//! * [`edge`] — the CDN-style edge-cache tier: N edges with bounded LRU
//!   segment caches and request coalescing in front of the origin, so
//!   serving capacity (and the knee) scales with edge count instead of
//!   being pinned to one uplink; live sessions fetch through an edge
//!   transparently, and the fluid simulator shards load across the
//!   tier.
//!
//! # Example
//!
//! ```
//! use mmstream::ladder::{encode_ladder, publish_ladder, LadderConfig};
//! use mmstream::session::{run_session, SessionConfig};
//! use netstack::fetch::ContentServer;
//! use video::synth::SequenceGen;
//!
//! let frames = SequenceGen::new(2).panning_sequence(48, 32, 8, 1, 0);
//! let cfg = LadderConfig {
//!     targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
//!     gop: 4,
//!     ..Default::default()
//! };
//! let ladder = encode_ladder("demo", &frames, &cfg)?;
//! let mut server = ContentServer::new();
//! publish_ladder(&mut server, &ladder);
//! let report = run_session(&server, "demo", &SessionConfig::default()).unwrap();
//! assert_eq!(report.segments.len(), 2);
//! assert_eq!(report.rebuffer_events, 0);
//! # Ok::<(), mmstream::ladder::LadderError>(())
//! ```

pub mod edge;
pub mod ladder;
pub mod segment;
pub mod serve;
pub mod session;
pub mod ts;

pub use edge::{EdgeCache, EdgeConfig, EdgeStats, EdgeTierConfig, Lru, Sharding};
pub use ladder::{encode_ladder, publish_ladder, seal_ladder, Ladder, LadderConfig, Manifest};
pub use segment::{demux_segment, mux_segment, mux_segment_wire, Segment};
pub use serve::{
    capacity_curve, capacity_knee, edge_capacity_curve, edge_capacity_knee, simulate_edge_load,
    simulate_load, EdgeLoadReport, LoadConfig, LoadReport, ServerConfig,
};
pub use session::{run_session, run_session_via_edge, AbrController, SessionConfig, SessionReport};
pub use ts::{TsDemux, TsMux, TsPacket, TS_PACKET_LEN};
