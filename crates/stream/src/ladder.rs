//! ABR ladder encoding and the delivery manifest.
//!
//! A *ladder* is the same source sequence encoded at several target
//! bitrates (rungs), each cut into independently decodable GOP-aligned
//! segments — the encoder is driven through `video::rate`'s
//! buffer-feedback controller at each rung's budget, and each segment is
//! a closed GOP so a session can join or switch rungs at any segment
//! boundary. The [`Manifest`] describes rungs and segments; it travels
//! over the same content server as the segments themselves.
//!
//! Sealing ([`seal_ladder`]) wraps every segment in XTEA-CTR under the
//! title's content key (Wolf §6: encryption as a *tool* inside the
//! delivery architecture); the license carrying that key is fetched by
//! the session at start.
//!
//! Beyond VOD, this module also hosts the *live/linear* origin:
//! [`LiveOrigin`] publishes a pre-encoded ladder (the content "wheel")
//! one segment at a time on a tick clock, keeps a rolling DVR window of
//! at most `dvr_window_segments` published segments per rung, and
//! republishes a *versioned* live [`Manifest`] (its [`LiveWindow`]
//! carries a generation counter plus `[first_seq, live_seq]`) after
//! every window change. Segments that fall out of the window are
//! unpublished from the origin server; the delta of published/expired
//! object names is returned so edge caches can invalidate.

use drm::playback::LicenseAuthority;
use drm::TitleId;
use mediafs::fs::{FsError, MediaFs};
use mmpool::WorkerPool;
use netstack::fetch::ContentServer;
use video::encoder::{Encoder, EncoderConfig, EncoderError, StageTally};
use video::rate::RateConfig;
use video::{Frame, SearchKind};

use crate::segment::mux_segment_wire;

/// Ladder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderConfig {
    /// Per-rung target bits per frame, strictly ascending (rung 0 is the
    /// lowest/safest).
    pub targets_bits_per_frame: Vec<f64>,
    /// Frames per GOP = frames per segment.
    pub gop: usize,
    /// Playout duration of one frame, in simulated ticks.
    pub ticks_per_frame: u64,
    /// Motion search used for every rung.
    pub search: SearchKind,
    /// Motion search range.
    pub search_range: i32,
}

impl Default for LadderConfig {
    /// Three rungs (4k/12k/36k bits per frame), GOP 8, 100 ticks per
    /// frame, diamond search ±7 (a streaming head-end encodes many rungs;
    /// the cheap search keeps that affordable).
    fn default() -> Self {
        Self {
            targets_bits_per_frame: vec![4_000.0, 12_000.0, 36_000.0],
            gop: 8,
            ticks_per_frame: 100,
            search: SearchKind::Diamond,
            search_range: 7,
        }
    }
}

/// Errors building or parsing ladders and manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum LadderError {
    /// Targets empty, non-positive, or not strictly ascending.
    BadTargets,
    /// Title empty or containing whitespace (it becomes an object-name
    /// prefix and a manifest token).
    BadTitle,
    /// A zero `ticks_per_frame` (it divides every playout and ABR rate).
    ZeroTicksPerFrame,
    /// A live-origin configuration that cannot publish (zero DVR window
    /// or zero ticks per segment).
    BadLiveConfig(&'static str),
    /// The underlying video encoder refused.
    Encoder(EncoderError),
    /// A filesystem operation failed.
    Fs(FsError),
    /// Manifest bytes did not parse.
    Manifest(&'static str),
}

impl core::fmt::Display for LadderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LadderError::BadTargets => {
                f.write_str("rung targets must be positive and strictly ascending")
            }
            LadderError::BadTitle => f.write_str("title must be non-empty without whitespace"),
            LadderError::ZeroTicksPerFrame => f.write_str("ticks_per_frame must be positive"),
            LadderError::BadLiveConfig(what) => write!(f, "bad live origin config: {what}"),
            LadderError::Encoder(e) => write!(f, "rung encode failed: {e}"),
            LadderError::Fs(e) => write!(f, "segment store failed: {e:?}"),
            LadderError::Manifest(what) => write!(f, "malformed manifest: {what}"),
        }
    }
}

impl std::error::Error for LadderError {}

impl From<EncoderError> for LadderError {
    fn from(e: EncoderError) -> Self {
        LadderError::Encoder(e)
    }
}

impl From<FsError> for LadderError {
    fn from(e: FsError) -> Self {
        LadderError::Fs(e)
    }
}

/// One segment's manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentEntry {
    /// Object name relative to the title, e.g. `r0_s3.ts`.
    pub name: String,
    /// Wire bytes (sealed and clear sizes are identical under CTR).
    pub bytes: usize,
    /// Source frames in the segment.
    pub frames: usize,
    /// CTR nonce used when the ladder is sealed.
    pub nonce: u32,
}

/// One rung: a target bitrate and its segment list.
#[derive(Debug, Clone, PartialEq)]
pub struct RungInfo {
    /// The rate-controller budget this rung was encoded at.
    pub target_bits_per_frame: f64,
    /// Segments in playout order.
    pub segments: Vec<SegmentEntry>,
}

impl RungInfo {
    /// Bits per tick a session must sustain to fetch segment `seg` no
    /// slower than it plays.
    #[must_use]
    pub fn required_bits_per_tick(&self, seg: usize, ticks_per_frame: u64) -> f64 {
        let e = &self.segments[seg];
        (e.bytes * 8) as f64 / (e.frames as f64 * ticks_per_frame as f64).max(1.0)
    }
}

/// The live window a linear manifest advertises: rung segment lists
/// cover exactly the sequence numbers `first_seq..=live_seq`, and the
/// generation counter increments every time the origin republishes the
/// manifest (the version an edge cache revalidates against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveWindow {
    /// Manifest version; strictly increasing at the origin.
    pub generation: u64,
    /// Oldest sequence number still published (DVR window start).
    pub first_seq: u64,
    /// Newest published sequence number (the live edge).
    pub live_seq: u64,
}

/// The oldest sequence a DVR window of `dvr_window` segments keeps
/// when the live edge is at `live_seq` — the one window-start rule
/// shared by [`LiveOrigin`] and the fluid simulator's live gates.
#[must_use]
pub fn dvr_window_start(live_seq: u64, dvr_window: u64) -> u64 {
    live_seq + 1 - dvr_window.min(live_seq + 1)
}

impl LiveWindow {
    /// Segments currently in the window.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.live_seq - self.first_seq + 1
    }

    /// A window always holds at least the live-edge segment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `seq` is currently fetchable.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        (self.first_seq..=self.live_seq).contains(&seq)
    }
}

/// The delivery manifest: what a session fetches first.
///
/// A VOD manifest (`live == None`) lists an immutable title in full; a
/// live manifest (`live == Some`) is a rolling snapshot whose rung
/// segment lists cover exactly `[first_seq, live_seq]` — entry `i` of
/// every rung is sequence number `first_seq + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The title (object-name prefix).
    pub title: String,
    /// Playout ticks per frame.
    pub ticks_per_frame: u64,
    /// Whether segments are XTEA-CTR sealed (license required).
    pub sealed: bool,
    /// The live window, for linear titles; `None` for VOD.
    pub live: Option<LiveWindow>,
    /// Rungs in ascending bitrate order.
    pub rungs: Vec<RungInfo>,
}

impl Manifest {
    /// Segments per rung (identical across rungs by construction).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.rungs.first().map_or(0, |r| r.segments.len())
    }

    /// The title's natural live publish pace: first-segment frames ×
    /// ticks-per-frame, i.e. segments go live exactly as fast as their
    /// content plays out. Zero only for an empty manifest. The single
    /// source of this rule for both [`LiveOrigin`] and the fluid
    /// simulator's live gates.
    #[must_use]
    pub fn natural_ticks_per_segment(&self) -> u64 {
        self.rungs
            .first()
            .and_then(|r| r.segments.first())
            .map_or(0, |s| s.frames as u64)
            .saturating_mul(self.ticks_per_frame)
    }

    /// The manifest's object name for a title.
    #[must_use]
    pub fn manifest_object(title: &str) -> String {
        format!("{title}/manifest")
    }

    /// The license's object name for a title.
    #[must_use]
    pub fn license_object(title: &str) -> String {
        format!("{title}/license")
    }

    /// The full object name of one segment.
    #[must_use]
    pub fn segment_object(&self, rung: usize, seg: usize) -> String {
        format!("{}/{}", self.title, self.rungs[rung].segments[seg].name)
    }

    /// Serialises the manifest (line-oriented text; one token may not
    /// contain whitespace, which [`encode_ladder`] enforces for titles).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from("MMSTREAM 1\n");
        out.push_str(&format!("title {}\n", self.title));
        out.push_str(&format!("ticks_per_frame {}\n", self.ticks_per_frame));
        out.push_str(&format!("sealed {}\n", u8::from(self.sealed)));
        if let Some(lw) = &self.live {
            out.push_str(&format!(
                "live {} {} {}\n",
                lw.generation, lw.first_seq, lw.live_seq
            ));
        }
        for r in &self.rungs {
            out.push_str(&format!("rung {}\n", r.target_bits_per_frame));
            for s in &r.segments {
                out.push_str(&format!(
                    "seg {} {} {} {}\n",
                    s.name, s.bytes, s.frames, s.nonce
                ));
            }
        }
        out.into_bytes()
    }

    /// Parses manifest bytes.
    ///
    /// Manifests arrive over the network, so this is a full validator:
    /// truncated, mutated, or adversarial bytes must return `Err`, never
    /// panic, and never produce a manifest whose numbers later underflow
    /// or overflow playout arithmetic. Beyond framing, it enforces the
    /// same invariants [`encode_ladder`] guarantees: exactly one of each
    /// header directive, strictly ascending rung targets, equal segment
    /// counts, and field magnitudes bounded so `frames * ticks_per_frame`
    /// cannot overflow.
    ///
    /// # Errors
    ///
    /// Returns [`LadderError::Manifest`] on any framing or field error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LadderError> {
        /// Playout math multiplies `frames * ticks_per_frame`; these caps
        /// keep every product comfortably inside `u64`.
        const MAX_TICKS_PER_FRAME: u64 = 1 << 30;
        const MAX_FRAMES: u64 = 1 << 20;
        const MAX_BYTES: u64 = 1 << 40;
        /// Live sequence numbers multiply into publish-tick arithmetic
        /// (`seq * frames * ticks_per_frame`); this cap keeps the
        /// product inside `u64` even against the other two caps.
        const MAX_SEQ: u64 = 1 << 40;

        let text = core::str::from_utf8(bytes).map_err(|_| LadderError::Manifest("not utf-8"))?;
        let mut lines = text.lines();
        if lines.next() != Some("MMSTREAM 1") {
            return Err(LadderError::Manifest("bad magic line"));
        }
        let mut title: Option<String> = None;
        let mut ticks_per_frame: Option<u64> = None;
        let mut sealed: Option<bool> = None;
        let mut live: Option<LiveWindow> = None;
        let mut rungs: Vec<RungInfo> = Vec::new();
        for line in lines {
            let mut words = line.split_whitespace();
            match words.next() {
                Some("title") => {
                    if title.is_some() {
                        return Err(LadderError::Manifest("duplicate title"));
                    }
                    let t = words.next().ok_or(LadderError::Manifest("missing title"))?;
                    if t.contains('/') {
                        return Err(LadderError::Manifest("title contains '/'"));
                    }
                    title = Some(t.to_string());
                }
                Some("ticks_per_frame") => {
                    if ticks_per_frame.is_some() {
                        return Err(LadderError::Manifest("duplicate ticks_per_frame"));
                    }
                    ticks_per_frame = Some(
                        words
                            .next()
                            .and_then(|w| w.parse::<u64>().ok())
                            .filter(|&t| t > 0 && t <= MAX_TICKS_PER_FRAME)
                            .ok_or(LadderError::Manifest("bad ticks_per_frame"))?,
                    );
                }
                Some("sealed") => {
                    if sealed.is_some() {
                        return Err(LadderError::Manifest("duplicate sealed flag"));
                    }
                    sealed = match words.next() {
                        Some("0") => Some(false),
                        Some("1") => Some(true),
                        _ => return Err(LadderError::Manifest("bad sealed flag")),
                    }
                }
                Some("live") => {
                    if live.is_some() {
                        return Err(LadderError::Manifest("duplicate live window"));
                    }
                    let mut num = |what| {
                        words
                            .next()
                            .and_then(|w| w.parse::<u64>().ok())
                            .filter(|&v| v <= MAX_SEQ)
                            .ok_or(LadderError::Manifest(what))
                    };
                    let generation = num("bad live generation")?;
                    let first_seq = num("bad live first_seq")?;
                    let live_seq = num("bad live live_seq")?;
                    if first_seq > live_seq {
                        return Err(LadderError::Manifest("live window inverted"));
                    }
                    live = Some(LiveWindow {
                        generation,
                        first_seq,
                        live_seq,
                    });
                }
                Some("rung") => {
                    let target = words
                        .next()
                        .and_then(|w| w.parse::<f64>().ok())
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .ok_or(LadderError::Manifest("bad rung target"))?;
                    if rungs
                        .last()
                        .is_some_and(|prev| prev.target_bits_per_frame >= target)
                    {
                        return Err(LadderError::Manifest("rung targets not ascending"));
                    }
                    rungs.push(RungInfo {
                        target_bits_per_frame: target,
                        segments: Vec::new(),
                    });
                }
                Some("seg") => {
                    let rung = rungs
                        .last_mut()
                        .ok_or(LadderError::Manifest("seg before rung"))?;
                    let name = words
                        .next()
                        .ok_or(LadderError::Manifest("seg missing name"))?
                        .to_string();
                    let mut num = |what, max: u64| {
                        words
                            .next()
                            .and_then(|w| w.parse::<u64>().ok())
                            .filter(|&v| v >= 1 && v <= max)
                            .ok_or(LadderError::Manifest(what))
                    };
                    let bytes = num("bad seg bytes", MAX_BYTES)? as usize;
                    let frames = num("bad seg frames", MAX_FRAMES)? as usize;
                    let nonce = words
                        .next()
                        .and_then(|w| w.parse::<u64>().ok())
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or(LadderError::Manifest("bad seg nonce"))?;
                    rung.segments.push(SegmentEntry {
                        name,
                        bytes,
                        frames,
                        nonce,
                    });
                }
                Some(_) => return Err(LadderError::Manifest("unknown directive")),
                None => {} // blank line
            }
            if words.next().is_some() {
                return Err(LadderError::Manifest("trailing tokens"));
            }
        }
        let title = title
            .filter(|t| !t.is_empty())
            .ok_or(LadderError::Manifest("missing title"))?;
        let ticks_per_frame = ticks_per_frame.ok_or(LadderError::Manifest("missing tpf"))?;
        let sealed = sealed.ok_or(LadderError::Manifest("missing sealed flag"))?;
        if rungs.is_empty() {
            return Err(LadderError::Manifest("no rungs"));
        }
        let n = rungs[0].segments.len();
        if n == 0 || rungs.iter().any(|r| r.segments.len() != n) {
            return Err(LadderError::Manifest("rung segment counts differ"));
        }
        if let Some(lw) = &live {
            // Entry i of every rung is sequence first_seq + i, so the
            // advertised window must match the listed segment count.
            if lw.len() != n as u64 {
                return Err(LadderError::Manifest("live window/segment mismatch"));
            }
        }
        Ok(Self {
            title,
            ticks_per_frame,
            sealed,
            live,
            rungs,
        })
    }
}

/// What one rung's encode actually cost: the encoder's stage tallies
/// summed over every segment, plus the elementary-stream bytes handed
/// to the muxer. This is the measured calibration data the MPSoC
/// head-end spec (`crate::headend`) turns into per-rung `OpCounts` and
/// edge byte weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RungCost {
    /// Encoder stage tallies summed across the rung's segments.
    pub tally: StageTally,
    /// Elementary-stream bytes across the rung's segments (pre-mux).
    pub es_bytes: u64,
}

/// A built ladder: the manifest plus every segment's wire bytes,
/// `segments[rung][seg]` parallel to the manifest, and the measured
/// per-rung encode cost (parallel to `manifest.rungs`).
#[derive(Debug, Clone, PartialEq)]
pub struct Ladder {
    /// The manifest.
    pub manifest: Manifest,
    /// Muxed (possibly sealed) segment bytes per rung.
    pub segments: Vec<Vec<Vec<u8>>>,
    /// Measured encode cost per rung.
    pub rung_costs: Vec<RungCost>,
}

impl Ladder {
    /// Total wire bytes across every rung and segment.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.segments
            .iter()
            .flat_map(|r| r.iter().map(Vec::len))
            .sum()
    }
}

/// The output of one per-rung work unit: the rung's manifest entries,
/// its muxed wire bytes, and its measured encode cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RungBuild {
    /// The rung's manifest entry (target + segment list).
    pub rung: RungInfo,
    /// Muxed wire bytes, one `Vec<u8>` per segment.
    pub wires: Vec<Vec<u8>>,
    /// Measured encode cost.
    pub cost: RungCost,
}

/// Validates the shared `encode_ladder` inputs.
fn validate_ladder_inputs(
    title: &str,
    frames: &[Frame],
    config: &LadderConfig,
) -> Result<(), LadderError> {
    if title.is_empty() || title.split_whitespace().count() != 1 || title.contains('/') {
        return Err(LadderError::BadTitle);
    }
    let targets = &config.targets_bits_per_frame;
    if targets.is_empty()
        || targets.iter().any(|t| !t.is_finite() || *t <= 0.0)
        || targets.windows(2).any(|w| w[0] >= w[1])
    {
        return Err(LadderError::BadTargets);
    }
    if config.ticks_per_frame == 0 {
        return Err(LadderError::ZeroTicksPerFrame);
    }
    if frames.is_empty() {
        return Err(LadderError::Encoder(EncoderError::Empty));
    }
    Ok(())
}

/// Encodes one ladder rung: the head-end's per-rung work unit.
///
/// This is the *single definition* of a rung stage. The sequential
/// [`encode_ladder`] loops over it; the pooled [`encode_ladder_on`]
/// fans it out across worker threads. It is deliberately a pure
/// function of borrowed inputs (`&[Frame]`, `&LadderConfig`) with no
/// shared mutable state, so the two drivers are bit-identical by
/// construction: rungs neither read nor write each other's data, and
/// the `video` encoder itself is `&self`-clean (per-call stack
/// scratch), so concurrent rungs do not interact.
///
/// # Errors
///
/// Returns [`LadderError::Encoder`] if the encoder refuses (empty or
/// mis-dimensioned frames).
///
/// # Panics
///
/// Panics if `rung_index` is out of range for the config's targets.
pub fn encode_rung(
    frames: &[Frame],
    config: &LadderConfig,
    rung_index: usize,
) -> Result<RungBuild, LadderError> {
    let targets = &config.targets_bits_per_frame;
    assert!(
        rung_index < targets.len(),
        "rung {rung_index} out of range for {} targets",
        targets.len()
    );
    let ri = rung_index;
    let target = targets[ri];
    // Rate control alone cannot separate rungs on easy content (every
    // rung would drift to max quality), so each rung also gets a
    // quality band — the capped-quality + rate-target combination
    // real ladder encoders use. The controller may still drop to
    // quality 5 to hold the bit budget on hard content.
    let quality = if targets.len() == 1 {
        75u8
    } else {
        (35 + ri * 55 / (targets.len() - 1)) as u8
    };
    let encoder = Encoder::new(EncoderConfig {
        quality,
        gop: config.gop,
        search: config.search,
        search_range: config.search_range,
        rate: Some(RateConfig {
            max_quality: (quality + 8).min(95),
            ..RateConfig::for_target(target)
        }),
    })?;
    let mut entries = Vec::new();
    let mut wires = Vec::new();
    let mut cost = RungCost::default();
    for (si, chunk) in frames.chunks(config.gop).enumerate() {
        let seq = encoder.encode(chunk)?;
        // Closed GOP by construction: the chunk is at most one GOP
        // long, so the encoder's boundary metadata must report
        // exactly one I-frame-led range.
        debug_assert_eq!(seq.gop_frame_ranges(), vec![0..chunk.len()]);
        let t = &mut cost.tally;
        t.me_sad_evaluations += seq.tally.me_sad_evaluations;
        t.me_pixel_ops += seq.tally.me_pixel_ops;
        t.dct_blocks += seq.tally.dct_blocks;
        t.idct_blocks += seq.tally.idct_blocks;
        t.quant_coeffs += seq.tally.quant_coeffs;
        t.vlc_symbols += seq.tally.vlc_symbols;
        t.mc_pixels += seq.tally.mc_pixels;
        cost.es_bytes += seq.bytes.len() as u64;
        let wire = mux_segment_wire(&seq, None);
        entries.push(SegmentEntry {
            name: format!("r{ri}_s{si}.ts"),
            bytes: wire.len(),
            frames: chunk.len(),
            nonce: ((ri as u32) << 16) | si as u32,
        });
        wires.push(wire);
    }
    Ok(RungBuild {
        rung: RungInfo {
            target_bits_per_frame: target,
            segments: entries,
        },
        wires,
        cost,
    })
}

/// Assembles rung builds (in rung order) into a ladder.
fn assemble_ladder(title: &str, config: &LadderConfig, builds: Vec<RungBuild>) -> Ladder {
    let mut rungs = Vec::with_capacity(builds.len());
    let mut segments = Vec::with_capacity(builds.len());
    let mut rung_costs = Vec::with_capacity(builds.len());
    for b in builds {
        rungs.push(b.rung);
        segments.push(b.wires);
        rung_costs.push(b.cost);
    }
    Ladder {
        manifest: Manifest {
            title: title.to_string(),
            ticks_per_frame: config.ticks_per_frame,
            sealed: false,
            live: None,
            rungs,
        },
        segments,
        rung_costs,
    }
}

/// Encodes `frames` at every rung of `config`, cutting closed-GOP
/// segments and muxing each to wire packets. One [`encode_rung`] work
/// unit per rung, run sequentially.
///
/// # Errors
///
/// Returns [`LadderError`] for bad targets/titles or encoder failures.
pub fn encode_ladder(
    title: &str,
    frames: &[Frame],
    config: &LadderConfig,
) -> Result<Ladder, LadderError> {
    validate_ladder_inputs(title, frames, config)?;
    let builds = (0..config.targets_bits_per_frame.len())
        .map(|ri| encode_rung(frames, config, ri))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(assemble_ladder(title, config, builds))
}

/// Encodes the ladder with one [`encode_rung`] work unit per rung
/// fanned out on `pool`, merging results in rung order. Bit-identical
/// to [`encode_ladder`] for any worker count and completion
/// interleaving (property-pinned in the test suite): the work units
/// share nothing mutable, and the merge is by rung index, not
/// completion order. When several rungs fail, the lowest rung's error
/// is returned — the same error the sequential driver stops at.
///
/// # Errors
///
/// Returns [`LadderError`] for bad targets/titles or encoder failures.
pub fn encode_ladder_on(
    pool: &WorkerPool,
    title: &str,
    frames: &[Frame],
    config: &LadderConfig,
) -> Result<Ladder, LadderError> {
    validate_ladder_inputs(title, frames, config)?;
    let indices: Vec<usize> = (0..config.targets_bits_per_frame.len()).collect();
    let builds = pool
        .map(&indices, |&ri| encode_rung(frames, config, ri))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    Ok(assemble_ladder(title, config, builds))
}

/// Seals every segment under the title's content key (XTEA-CTR, one
/// nonce per segment from the manifest). The manifest itself stays
/// clear — it names objects, the *content* is what §6 protects.
///
/// # Panics
///
/// Panics if `title_id` was not registered with the authority.
pub fn seal_ladder(ladder: &mut Ladder, authority: &LicenseAuthority, title_id: TitleId) {
    for (ri, rung) in ladder.segments.iter_mut().enumerate() {
        for (si, wire) in rung.iter_mut().enumerate() {
            let nonce = ladder.manifest.rungs[ri].segments[si].nonce;
            *wire = authority.encrypt_content(title_id, wire, nonce);
        }
    }
    ladder.manifest.sealed = true;
}

/// Publishes the manifest and every segment on a content server.
pub fn publish_ladder(server: &mut ContentServer, ladder: &Ladder) {
    let m = &ladder.manifest;
    server.publish(Manifest::manifest_object(&m.title), m.to_bytes());
    for (ri, rung) in ladder.segments.iter().enumerate() {
        for (si, wire) in rung.iter().enumerate() {
            server.publish(m.segment_object(ri, si), wire.clone());
        }
    }
}

/// Writes the ladder into a media filesystem (`/<title>/...`) — the
/// segment store backing a long-lived server.
///
/// # Errors
///
/// Propagates filesystem errors (e.g. out of space).
pub fn store_ladder(fs: &mut MediaFs, ladder: &Ladder) -> Result<(), LadderError> {
    let m = &ladder.manifest;
    fs.mkdir(&format!("/{}", m.title))?;
    fs.create(
        &format!("/{}", Manifest::manifest_object(&m.title)),
        &m.to_bytes(),
    )?;
    for (ri, rung) in ladder.segments.iter().enumerate() {
        for (si, wire) in rung.iter().enumerate() {
            fs.create(&format!("/{}", m.segment_object(ri, si)), wire)?;
        }
    }
    Ok(())
}

/// Loads a stored title from the filesystem and publishes it on the
/// server — the boot path of a segment server restarting over its store.
///
/// # Errors
///
/// Returns [`LadderError`] if the manifest is missing/malformed or a
/// segment read fails.
pub fn publish_from_fs(
    fs: &mut MediaFs,
    server: &mut ContentServer,
    title: &str,
) -> Result<Manifest, LadderError> {
    let manifest_path = format!("/{}", Manifest::manifest_object(title));
    let bytes = fs.read(&manifest_path)?;
    let manifest = Manifest::from_bytes(&bytes)?;
    server.publish(Manifest::manifest_object(title), bytes);
    for (ri, rung) in manifest.rungs.iter().enumerate() {
        for si in 0..rung.segments.len() {
            let object = manifest.segment_object(ri, si);
            server.publish(object.clone(), fs.read(&format!("/{object}"))?);
        }
    }
    Ok(manifest)
}

/// Live-origin configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveOriginConfig {
    /// Most segments kept published per rung (`u64::MAX` = infinite
    /// DVR: nothing ever expires).
    pub dvr_window_segments: u64,
    /// Ticks between segment publishes. `0` derives the natural pace
    /// from the wheel: first-segment frames × `ticks_per_frame` (i.e.
    /// real time — a segment becomes available exactly when its content
    /// has played out at the head end).
    pub ticks_per_segment: u64,
}

impl Default for LiveOriginConfig {
    /// An 8-segment DVR window publishing at the wheel's natural pace.
    fn default() -> Self {
        Self {
            dvr_window_segments: 8,
            ticks_per_segment: 0,
        }
    }
}

/// What one [`LiveOrigin::advance_to`] call changed on the server.
///
/// Edge caches subscribe to this: `published` names are the fresh
/// live-edge objects (the thundering-herd case), `expired` names fell
/// out of the DVR window and must be invalidated, and
/// `manifest_updated` says the (mutable) manifest object was rewritten.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PublishDelta {
    /// Segment objects newly published, oldest first.
    pub published: Vec<String>,
    /// Segment objects unpublished (DVR-window expiry), oldest first.
    pub expired: Vec<String>,
    /// Whether the manifest object changed (a new generation).
    pub manifest_updated: bool,
}

/// A live/linear channel head end: publishes a pre-encoded ladder (the
/// content *wheel* — linear channels loop their material) one segment
/// per `ticks_per_segment` onto a [`ContentServer`], holding a rolling
/// DVR window per rung and republishing a versioned live [`Manifest`]
/// on every change.
///
/// Sequence number `seq` goes live at tick `seq * ticks_per_segment`
/// and serves wheel segment `seq % wheel_len` on every rung, so a
/// sealed wheel stays sealed (manifest entries carry the wheel nonce).
/// The object lifecycle is the inverse of VOD: segments are immutable
/// but *transient* (published once, expired once), while the manifest
/// is a long-lived *mutable* object.
#[derive(Debug, Clone)]
pub struct LiveOrigin {
    wheel: Ladder,
    dvr: u64,
    tps: u64,
    /// Latest published sequence; `None` before the first advance.
    live_seq: Option<u64>,
    generation: u64,
}

impl LiveOrigin {
    /// Wraps an encoded ladder as a live channel. Nothing is published
    /// until the first [`Self::advance_to`].
    ///
    /// # Errors
    ///
    /// Returns [`LadderError::BadLiveConfig`] for a zero DVR window or
    /// a wheel whose derived publish pace would be zero ticks.
    pub fn new(wheel: Ladder, config: LiveOriginConfig) -> Result<Self, LadderError> {
        if config.dvr_window_segments == 0 {
            return Err(LadderError::BadLiveConfig("zero DVR window"));
        }
        let tps = if config.ticks_per_segment > 0 {
            config.ticks_per_segment
        } else {
            wheel.manifest.natural_ticks_per_segment()
        };
        if tps == 0 {
            return Err(LadderError::BadLiveConfig("zero ticks per segment"));
        }
        Ok(Self {
            wheel,
            dvr: config.dvr_window_segments,
            tps,
            live_seq: None,
            generation: 0,
        })
    }

    /// Ticks between publishes (resolved, never zero).
    #[must_use]
    pub fn ticks_per_segment(&self) -> u64 {
        self.tps
    }

    /// The tick at which sequence `seq` goes live.
    #[must_use]
    pub fn publish_tick(&self, seq: u64) -> u64 {
        seq.saturating_mul(self.tps)
    }

    /// Latest published sequence number, if anything is live yet.
    #[must_use]
    pub fn live_seq(&self) -> Option<u64> {
        self.live_seq
    }

    /// Oldest still-published sequence number.
    #[must_use]
    pub fn first_seq(&self) -> Option<u64> {
        self.live_seq.map(|live| dvr_window_start(live, self.dvr))
    }

    /// Current manifest generation (bumps on every republish).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The wheel being looped.
    #[must_use]
    pub fn wheel(&self) -> &Ladder {
        &self.wheel
    }

    fn segment_name(title: &str, rung: usize, seq: u64) -> String {
        format!("{title}/r{rung}_s{seq}.ts")
    }

    /// The current windowed live manifest; `None` before the first
    /// advance (an unstarted channel has no window to advertise).
    #[must_use]
    pub fn manifest(&self) -> Option<Manifest> {
        let live = self.live_seq?;
        let first = self.first_seq().expect("live implies first");
        let m = &self.wheel.manifest;
        let wheel_len = m.segment_count() as u64;
        let rungs = m
            .rungs
            .iter()
            .enumerate()
            .map(|(ri, rung)| RungInfo {
                target_bits_per_frame: rung.target_bits_per_frame,
                segments: (first..=live)
                    .map(|seq| {
                        let src = &rung.segments[(seq % wheel_len) as usize];
                        SegmentEntry {
                            name: format!("r{ri}_s{seq}.ts"),
                            bytes: src.bytes,
                            frames: src.frames,
                            nonce: src.nonce,
                        }
                    })
                    .collect(),
            })
            .collect();
        Some(Manifest {
            title: m.title.clone(),
            ticks_per_frame: m.ticks_per_frame,
            sealed: m.sealed,
            live: Some(LiveWindow {
                generation: self.generation,
                first_seq: first,
                live_seq: live,
            }),
            rungs,
        })
    }

    /// Publishes everything due by `now_tick` onto `server`, expires
    /// everything that left the DVR window, and republishes the
    /// manifest when either happened. Idempotent for a given tick and
    /// monotone across calls (a `now_tick` earlier than a previous call
    /// publishes nothing — the channel never rewinds).
    ///
    /// Skip-ahead is O(window), not O(elapsed): on a large time jump
    /// (a viewer tuning into a long-running channel) only the
    /// sequences inside the final DVR window are materialised — the
    /// ones in between would be born expired and are never published.
    ///
    /// Always call it with the *same* server: the origin assumes it is
    /// the only writer of its objects.
    pub fn advance_to(&mut self, server: &mut ContentServer, now_tick: u64) -> PublishDelta {
        let due = now_tick / self.tps;
        let mut delta = PublishDelta::default();
        let title = self.wheel.manifest.title.clone();
        let wheel_len = self.wheel.manifest.segment_count() as u64;
        let old_window = self
            .live_seq
            .map(|live| (self.first_seq().expect("live"), live));
        let next = self.live_seq.map_or(0, |l| l + 1);
        if due >= next {
            // Born-expired sequences (before the window at `due`) are
            // skipped, not published-then-removed.
            let start = next.max(dvr_window_start(due, self.dvr));
            for seq in start..=due {
                for (ri, rung) in self.wheel.segments.iter().enumerate() {
                    let name = Self::segment_name(&title, ri, seq);
                    server.publish(name.clone(), rung[(seq % wheel_len) as usize].clone());
                    delta.published.push(name);
                }
            }
            self.live_seq = Some(due);
        }
        if let (Some((old_first, old_live)), Some(new_first)) = (old_window, self.first_seq()) {
            // Only sequences that were actually published can expire.
            for seq in old_first..new_first.min(old_live + 1) {
                for ri in 0..self.wheel.segments.len() {
                    let name = Self::segment_name(&title, ri, seq);
                    if server.remove(&name).is_some() {
                        delta.expired.push(name);
                    }
                }
            }
        }
        if !delta.published.is_empty() || !delta.expired.is_empty() {
            self.generation += 1;
            let manifest = self.manifest().expect("published implies a window");
            server.publish(Manifest::manifest_object(&title), manifest.to_bytes());
            delta.manifest_updated = true;
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::demux_segment;
    use drm::license::License;
    use drm::Right;
    use video::synth::SequenceGen;

    fn source(n: usize) -> Vec<Frame> {
        SequenceGen::new(33).panning_sequence(48, 32, n, 1, 1)
    }

    fn small_config() -> LadderConfig {
        LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        }
    }

    #[test]
    fn ladder_shape_and_rates_are_ordered() {
        let ladder = encode_ladder("movie", &source(10), &small_config()).unwrap();
        let m = &ladder.manifest;
        assert_eq!(m.rungs.len(), 3);
        assert_eq!(m.segment_count(), 3); // 4 + 4 + 2 frames
        assert_eq!(m.rungs[0].segments[2].frames, 2);
        // Higher rungs cost at least as many wire bytes segment by
        // segment (tiny segments can tie: wire size quantizes to whole
        // 188-byte packets) and strictly more in total.
        for s in 0..m.segment_count() {
            let sizes: Vec<usize> = m.rungs.iter().map(|r| r.segments[s].bytes).collect();
            assert!(
                sizes.windows(2).all(|w| w[0] <= w[1]),
                "rung sizes descend at segment {s}: {sizes:?}"
            );
        }
        let totals: Vec<usize> = m
            .rungs
            .iter()
            .map(|r| r.segments.iter().map(|s| s.bytes).sum())
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] < w[1]),
            "rung totals not ascending: {totals:?}"
        );
    }

    #[test]
    fn pooled_encode_is_bit_identical_for_any_worker_count() {
        let frames = source(10);
        let cfg = small_config();
        let seq = encode_ladder("movie", &frames, &cfg).unwrap();
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let par = encode_ladder_on(&pool, "movie", &frames, &cfg).unwrap();
            assert_eq!(par.manifest, seq.manifest, "{workers} workers");
            assert_eq!(par.segments, seq.segments, "{workers} workers");
            assert_eq!(par.rung_costs, seq.rung_costs, "{workers} workers");
        }
    }

    #[test]
    fn pooled_encode_reports_the_sequential_error() {
        let pool = WorkerPool::new(2);
        let bad = LadderConfig {
            targets_bits_per_frame: vec![6_000.0, 2_000.0],
            ..Default::default()
        };
        assert_eq!(
            encode_ladder_on(&pool, "movie", &source(4), &bad).unwrap_err(),
            encode_ladder("movie", &source(4), &bad).unwrap_err(),
        );
        assert_eq!(
            encode_ladder_on(&pool, "bad title", &source(4), &small_config()).unwrap_err(),
            LadderError::BadTitle,
        );
    }

    #[test]
    fn rung_work_units_compose_the_ladder() {
        // The sequential ladder is literally the per-rung work units in
        // order — the decomposition the pool fans out.
        let frames = source(8);
        let cfg = small_config();
        let ladder = encode_ladder("movie", &frames, &cfg).unwrap();
        for ri in 0..cfg.targets_bits_per_frame.len() {
            let build = encode_rung(&frames, &cfg, ri).unwrap();
            assert_eq!(build.rung, ladder.manifest.rungs[ri]);
            assert_eq!(build.wires, ladder.segments[ri]);
            assert_eq!(build.cost, ladder.rung_costs[ri]);
            assert!(build.cost.tally.vlc_symbols > 0);
            assert!(build.cost.es_bytes > 0);
        }
    }

    #[test]
    fn every_segment_decodes_standalone() {
        let ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        for rung in &ladder.segments {
            for wire in rung {
                let seg = demux_segment(wire);
                assert!(!seg.report.loss_detected());
                let dec = video::decode(&seg.video_es.unwrap()).unwrap();
                assert!(!dec.frames.is_empty());
                assert_eq!(dec.kinds[0], video::FrameKind::Intra);
            }
        }
    }

    #[test]
    fn manifest_round_trips() {
        let ladder = encode_ladder("movie", &source(9), &small_config()).unwrap();
        let bytes = ladder.manifest.to_bytes();
        let back = Manifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, ladder.manifest);
    }

    #[test]
    fn malformed_manifests_rejected() {
        assert!(Manifest::from_bytes(b"").is_err());
        assert!(Manifest::from_bytes(b"MMSTREAM 2\n").is_err());
        assert!(Manifest::from_bytes(b"MMSTREAM 1\ntitle t\n").is_err());
        assert!(
            Manifest::from_bytes(b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\n").is_err()
        );
        assert!(Manifest::from_bytes(
            b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nseg a 1 1 0\n"
        )
        .is_err());
        assert_eq!(
            Manifest::from_bytes(
                b"MMSTREAM 1\ntitle t\nticks_per_frame 0\nsealed 0\nrung 100\nseg a 1 1 0\n"
            )
            .unwrap_err(),
            LadderError::Manifest("bad ticks_per_frame")
        );
    }

    #[test]
    fn hardened_manifest_parser_rejects_hostile_bytes() {
        let ok = b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 0\n";
        assert!(Manifest::from_bytes(ok).is_ok());
        let cases: &[(&[u8], &str)] = &[
            (
                b"MMSTREAM 1\ntitle t\ntitle u\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 0\n",
                "duplicate title",
            ),
            (
                b"MMSTREAM 1\ntitle a/b\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 0\n",
                "title contains '/'",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0 junk\nrung 100\nseg a 1 1 0\n",
                "trailing tokens",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nrung 50\nseg a 1 1 0\nseg b 1 1 0\n",
                "rung targets not ascending",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 4294967296\n",
                "nonce overflowing u32",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 18446744073709551615 0\n",
                "frames that would overflow playout math",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 18446744073709551615\nsealed 0\nrung 100\nseg a 1 1 0\n",
                "oversized ticks_per_frame",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 0 1 0\n",
                "zero-byte segment",
            ),
        ];
        for (bytes, what) in cases {
            assert!(
                Manifest::from_bytes(bytes).is_err(),
                "parser accepted {what}"
            );
        }
        // Truncation at every byte boundary errors cleanly, never panics.
        for cut in 0..ok.len() {
            let _ = Manifest::from_bytes(&ok[..cut]);
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let frames = source(4);
        let mut cfg = small_config();
        cfg.targets_bits_per_frame = vec![5_000.0, 5_000.0];
        assert_eq!(
            encode_ladder("t", &frames, &cfg).unwrap_err(),
            LadderError::BadTargets
        );
        assert_eq!(
            encode_ladder("two words", &frames, &small_config()).unwrap_err(),
            LadderError::BadTitle
        );
        assert_eq!(
            encode_ladder("a/b", &frames, &small_config()).unwrap_err(),
            LadderError::BadTitle
        );
        let zero_tpf = LadderConfig {
            ticks_per_frame: 0,
            ..small_config()
        };
        assert_eq!(
            encode_ladder("t", &frames, &zero_tpf).unwrap_err(),
            LadderError::ZeroTicksPerFrame
        );
    }

    #[test]
    fn sealing_is_reversible_with_the_license_key() {
        let mut authority = LicenseAuthority::new(b"studio".to_vec());
        let title_id = TitleId(9);
        authority.register_title(title_id);
        let mut ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        let clear = ladder.segments[0][0].clone();
        seal_ladder(&mut ladder, &authority, title_id);
        assert!(ladder.manifest.sealed);
        assert_ne!(ladder.segments[0][0], clear);
        assert_eq!(ladder.segments[0][0].len(), clear.len());
        // A session unseals via the license's content key.
        let sealed_license = authority.issue(title_id, vec![Right::Play]);
        let license = License::unseal(&sealed_license, authority.verification_key()).unwrap();
        let nonce = ladder.manifest.rungs[0].segments[0].nonce;
        let back =
            drm::cipher::XteaCtr::new(&license.content_key, nonce).applied(&ladder.segments[0][0]);
        assert_eq!(back, clear);
    }

    #[test]
    fn store_and_republish_from_mediafs() {
        let ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        let mut fs = MediaFs::new(4096, 512, mediafs::fs::AllocPolicy::FirstFit);
        store_ladder(&mut fs, &ladder).unwrap();
        let mut server = ContentServer::new();
        let manifest = publish_from_fs(&mut fs, &mut server, "movie").unwrap();
        assert_eq!(manifest, ladder.manifest);
        assert_eq!(
            server.len(),
            1 + manifest.rungs.len() * manifest.segment_count()
        );
        // Segment bytes survive the store -> publish path exactly.
        let names = server.names();
        assert!(names.contains(&"movie/manifest".to_string()));
        assert!(names.contains(&"movie/r2_s1.ts".to_string()));
    }

    #[test]
    fn live_origin_publishes_on_the_tick_clock() {
        let ladder = encode_ladder("chan", &source(12), &small_config()).unwrap();
        let n_rungs = ladder.manifest.rungs.len();
        let mut live = LiveOrigin::new(
            ladder,
            LiveOriginConfig {
                dvr_window_segments: 2,
                ticks_per_segment: 100,
            },
        )
        .unwrap();
        assert_eq!(live.ticks_per_segment(), 100);
        assert!(live.manifest().is_none(), "unstarted channel has no window");

        let mut server = ContentServer::new();
        // Tick 0: sequence 0 goes live, manifest appears.
        let d0 = live.advance_to(&mut server, 0);
        assert_eq!(d0.published.len(), n_rungs);
        assert!(d0.expired.is_empty());
        assert!(d0.manifest_updated);
        assert_eq!(live.live_seq(), Some(0));
        let m0 = Manifest::from_bytes(server.get("chan/manifest").unwrap()).unwrap();
        assert_eq!(m0, live.manifest().unwrap());
        let w0 = m0.live.unwrap();
        assert_eq!((w0.first_seq, w0.live_seq), (0, 0));

        // Nothing due yet: advancing within the same segment is a no-op.
        let d_none = live.advance_to(&mut server, 99);
        assert_eq!(d_none, PublishDelta::default());

        // Tick 250: sequences 1 and 2 are due; the 2-deep DVR window
        // expires sequence 0 on every rung.
        let d2 = live.advance_to(&mut server, 250);
        assert_eq!(d2.published.len(), 2 * n_rungs);
        assert_eq!(d2.expired.len(), n_rungs);
        assert!(d2.expired.iter().all(|n| n.contains("_s0.ts")));
        let m2 = Manifest::from_bytes(server.get("chan/manifest").unwrap()).unwrap();
        let w2 = m2.live.unwrap();
        assert_eq!((w2.first_seq, w2.live_seq), (1, 2));
        assert!(w2.generation > w0.generation, "republish bumps the version");
        assert!(
            server.get("chan/r0_s0.ts").is_none(),
            "expired is unpublished"
        );
        assert!(server.get("chan/r0_s2.ts").is_some());
        // Every listed segment is fetchable with the advertised size.
        for (ri, rung) in m2.rungs.iter().enumerate() {
            for (i, e) in rung.segments.iter().enumerate() {
                let seq = w2.first_seq + i as u64;
                assert_eq!(e.name, format!("r{ri}_s{seq}.ts"));
                let obj = server.get(&m2.segment_object(ri, i)).expect("fetchable");
                assert_eq!(obj.len(), e.bytes);
            }
        }
    }

    #[test]
    fn live_origin_loops_the_wheel_and_serves_sealed_content() {
        let mut authority = LicenseAuthority::new(b"studio".to_vec());
        let title_id = TitleId(5);
        authority.register_title(title_id);
        let mut ladder = encode_ladder("chan", &source(8), &small_config()).unwrap();
        seal_ladder(&mut ladder, &authority, title_id);
        let wheel_len = ladder.manifest.segment_count() as u64;
        let wheel_bytes = ladder.segments[0][0].clone();
        let wheel_nonce = ladder.manifest.rungs[0].segments[0].nonce;

        let mut live = LiveOrigin::new(
            ladder,
            LiveOriginConfig {
                dvr_window_segments: 3,
                ticks_per_segment: 10,
            },
        )
        .unwrap();
        let mut server = ContentServer::new();
        // Advance one full lap past the wheel: seq == wheel_len replays
        // wheel segment 0 — same sealed bytes, same nonce in the
        // manifest, so a license holder can still unseal it.
        live.advance_to(&mut server, wheel_len * 10);
        let m = live.manifest().unwrap();
        let w = m.live.unwrap();
        assert_eq!(w.live_seq, wheel_len);
        assert!(m.sealed);
        let idx = (wheel_len - w.first_seq) as usize;
        assert_eq!(
            m.rungs[0].segments[idx].nonce, wheel_nonce,
            "looped entries carry the wheel nonce"
        );
        assert_eq!(
            server.get(&m.segment_object(0, idx)).unwrap(),
            &wheel_bytes[..]
        );
    }

    #[test]
    fn live_origin_skips_ahead_in_window_time_not_elapsed_time() {
        let ladder = encode_ladder("chan", &source(12), &small_config()).unwrap();
        let n_rungs = ladder.manifest.rungs.len();
        let mut live = LiveOrigin::new(
            ladder,
            LiveOriginConfig {
                dvr_window_segments: 3,
                ticks_per_segment: 10,
            },
        )
        .unwrap();
        let mut server = ContentServer::new();
        live.advance_to(&mut server, 0); // seq 0 live
                                         // A viewer tunes in 10M ticks later: only the 3-segment window
                                         // is materialised (not a million intermediate sequences), and
                                         // the previously published sequence 0 expires.
        let d = live.advance_to(&mut server, 10_000_000);
        assert_eq!(live.live_seq(), Some(1_000_000));
        assert_eq!(
            d.published.len(),
            3 * n_rungs,
            "window only, not O(elapsed)"
        );
        assert_eq!(d.expired.len(), n_rungs, "only the really-published seq 0");
        assert!(d.expired.iter().all(|n| n.contains("_s0.ts")));
        // Server holds exactly the window plus the manifest.
        assert_eq!(server.len(), 3 * n_rungs + 1);
        let m = live.manifest().unwrap();
        let w = m.live.unwrap();
        assert_eq!((w.first_seq, w.live_seq), (999_998, 1_000_000));
    }

    #[test]
    fn live_origin_rejects_degenerate_configs() {
        let ladder = encode_ladder("chan", &source(8), &small_config()).unwrap();
        assert_eq!(
            LiveOrigin::new(
                ladder.clone(),
                LiveOriginConfig {
                    dvr_window_segments: 0,
                    ticks_per_segment: 10,
                },
            )
            .unwrap_err(),
            LadderError::BadLiveConfig("zero DVR window")
        );
        // Default pace derives from the wheel: gop 4 frames x 100 tpf.
        let live = LiveOrigin::new(ladder, LiveOriginConfig::default()).unwrap();
        assert_eq!(live.ticks_per_segment(), 400);
    }

    #[test]
    fn live_manifest_round_trips_and_is_validated() {
        let ladder = encode_ladder("chan", &source(12), &small_config()).unwrap();
        let mut live = LiveOrigin::new(
            ladder,
            LiveOriginConfig {
                dvr_window_segments: 2,
                ticks_per_segment: 50,
            },
        )
        .unwrap();
        let mut server = ContentServer::new();
        live.advance_to(&mut server, 120);
        let m = live.manifest().unwrap();
        let back = Manifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);

        // An inverted window is rejected.
        let mut bad = m.clone();
        bad.live = Some(LiveWindow {
            generation: 1,
            first_seq: 9,
            live_seq: 3,
        });
        assert_eq!(
            Manifest::from_bytes(&bad.to_bytes()).unwrap_err(),
            LadderError::Manifest("live window inverted")
        );
        // A window that disagrees with the listed segment count is
        // rejected (entry i must be sequence first_seq + i).
        let mut wide = m.clone();
        wide.live = Some(LiveWindow {
            generation: 1,
            first_seq: 0,
            live_seq: 40,
        });
        assert_eq!(
            Manifest::from_bytes(&wide.to_bytes()).unwrap_err(),
            LadderError::Manifest("live window/segment mismatch")
        );
        // Duplicate live directives are rejected.
        let mut text = String::from_utf8(m.to_bytes()).unwrap();
        text.push_str("live 7 1 2\n");
        assert_eq!(
            Manifest::from_bytes(text.as_bytes()).unwrap_err(),
            LadderError::Manifest("duplicate live window")
        );
    }

    #[test]
    fn required_rate_reflects_segment_size() {
        let ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        let m = &ladder.manifest;
        let low = m.rungs[0].required_bits_per_tick(0, m.ticks_per_frame);
        let high = m.rungs[2].required_bits_per_tick(0, m.ticks_per_frame);
        assert!(low > 0.0 && high > low);
    }
}
