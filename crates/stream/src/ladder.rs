//! ABR ladder encoding and the delivery manifest.
//!
//! A *ladder* is the same source sequence encoded at several target
//! bitrates (rungs), each cut into independently decodable GOP-aligned
//! segments — the encoder is driven through `video::rate`'s
//! buffer-feedback controller at each rung's budget, and each segment is
//! a closed GOP so a session can join or switch rungs at any segment
//! boundary. The [`Manifest`] describes rungs and segments; it travels
//! over the same content server as the segments themselves.
//!
//! Sealing ([`seal_ladder`]) wraps every segment in XTEA-CTR under the
//! title's content key (Wolf §6: encryption as a *tool* inside the
//! delivery architecture); the license carrying that key is fetched by
//! the session at start.

use drm::playback::LicenseAuthority;
use drm::TitleId;
use mediafs::fs::{FsError, MediaFs};
use netstack::fetch::ContentServer;
use video::encoder::{Encoder, EncoderConfig, EncoderError};
use video::rate::RateConfig;
use video::{Frame, SearchKind};

use crate::segment::mux_segment_wire;

/// Ladder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderConfig {
    /// Per-rung target bits per frame, strictly ascending (rung 0 is the
    /// lowest/safest).
    pub targets_bits_per_frame: Vec<f64>,
    /// Frames per GOP = frames per segment.
    pub gop: usize,
    /// Playout duration of one frame, in simulated ticks.
    pub ticks_per_frame: u64,
    /// Motion search used for every rung.
    pub search: SearchKind,
    /// Motion search range.
    pub search_range: i32,
}

impl Default for LadderConfig {
    /// Three rungs (4k/12k/36k bits per frame), GOP 8, 100 ticks per
    /// frame, diamond search ±7 (a streaming head-end encodes many rungs;
    /// the cheap search keeps that affordable).
    fn default() -> Self {
        Self {
            targets_bits_per_frame: vec![4_000.0, 12_000.0, 36_000.0],
            gop: 8,
            ticks_per_frame: 100,
            search: SearchKind::Diamond,
            search_range: 7,
        }
    }
}

/// Errors building or parsing ladders and manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum LadderError {
    /// Targets empty, non-positive, or not strictly ascending.
    BadTargets,
    /// Title empty or containing whitespace (it becomes an object-name
    /// prefix and a manifest token).
    BadTitle,
    /// A zero `ticks_per_frame` (it divides every playout and ABR rate).
    ZeroTicksPerFrame,
    /// The underlying video encoder refused.
    Encoder(EncoderError),
    /// A filesystem operation failed.
    Fs(FsError),
    /// Manifest bytes did not parse.
    Manifest(&'static str),
}

impl core::fmt::Display for LadderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LadderError::BadTargets => {
                f.write_str("rung targets must be positive and strictly ascending")
            }
            LadderError::BadTitle => f.write_str("title must be non-empty without whitespace"),
            LadderError::ZeroTicksPerFrame => f.write_str("ticks_per_frame must be positive"),
            LadderError::Encoder(e) => write!(f, "rung encode failed: {e}"),
            LadderError::Fs(e) => write!(f, "segment store failed: {e:?}"),
            LadderError::Manifest(what) => write!(f, "malformed manifest: {what}"),
        }
    }
}

impl std::error::Error for LadderError {}

impl From<EncoderError> for LadderError {
    fn from(e: EncoderError) -> Self {
        LadderError::Encoder(e)
    }
}

impl From<FsError> for LadderError {
    fn from(e: FsError) -> Self {
        LadderError::Fs(e)
    }
}

/// One segment's manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentEntry {
    /// Object name relative to the title, e.g. `r0_s3.ts`.
    pub name: String,
    /// Wire bytes (sealed and clear sizes are identical under CTR).
    pub bytes: usize,
    /// Source frames in the segment.
    pub frames: usize,
    /// CTR nonce used when the ladder is sealed.
    pub nonce: u32,
}

/// One rung: a target bitrate and its segment list.
#[derive(Debug, Clone, PartialEq)]
pub struct RungInfo {
    /// The rate-controller budget this rung was encoded at.
    pub target_bits_per_frame: f64,
    /// Segments in playout order.
    pub segments: Vec<SegmentEntry>,
}

impl RungInfo {
    /// Bits per tick a session must sustain to fetch segment `seg` no
    /// slower than it plays.
    #[must_use]
    pub fn required_bits_per_tick(&self, seg: usize, ticks_per_frame: u64) -> f64 {
        let e = &self.segments[seg];
        (e.bytes * 8) as f64 / (e.frames as f64 * ticks_per_frame as f64).max(1.0)
    }
}

/// The delivery manifest: what a session fetches first.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The title (object-name prefix).
    pub title: String,
    /// Playout ticks per frame.
    pub ticks_per_frame: u64,
    /// Whether segments are XTEA-CTR sealed (license required).
    pub sealed: bool,
    /// Rungs in ascending bitrate order.
    pub rungs: Vec<RungInfo>,
}

impl Manifest {
    /// Segments per rung (identical across rungs by construction).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.rungs.first().map_or(0, |r| r.segments.len())
    }

    /// The manifest's object name for a title.
    #[must_use]
    pub fn manifest_object(title: &str) -> String {
        format!("{title}/manifest")
    }

    /// The license's object name for a title.
    #[must_use]
    pub fn license_object(title: &str) -> String {
        format!("{title}/license")
    }

    /// The full object name of one segment.
    #[must_use]
    pub fn segment_object(&self, rung: usize, seg: usize) -> String {
        format!("{}/{}", self.title, self.rungs[rung].segments[seg].name)
    }

    /// Serialises the manifest (line-oriented text; one token may not
    /// contain whitespace, which [`encode_ladder`] enforces for titles).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from("MMSTREAM 1\n");
        out.push_str(&format!("title {}\n", self.title));
        out.push_str(&format!("ticks_per_frame {}\n", self.ticks_per_frame));
        out.push_str(&format!("sealed {}\n", u8::from(self.sealed)));
        for r in &self.rungs {
            out.push_str(&format!("rung {}\n", r.target_bits_per_frame));
            for s in &r.segments {
                out.push_str(&format!(
                    "seg {} {} {} {}\n",
                    s.name, s.bytes, s.frames, s.nonce
                ));
            }
        }
        out.into_bytes()
    }

    /// Parses manifest bytes.
    ///
    /// Manifests arrive over the network, so this is a full validator:
    /// truncated, mutated, or adversarial bytes must return `Err`, never
    /// panic, and never produce a manifest whose numbers later underflow
    /// or overflow playout arithmetic. Beyond framing, it enforces the
    /// same invariants [`encode_ladder`] guarantees: exactly one of each
    /// header directive, strictly ascending rung targets, equal segment
    /// counts, and field magnitudes bounded so `frames * ticks_per_frame`
    /// cannot overflow.
    ///
    /// # Errors
    ///
    /// Returns [`LadderError::Manifest`] on any framing or field error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LadderError> {
        /// Playout math multiplies `frames * ticks_per_frame`; these caps
        /// keep every product comfortably inside `u64`.
        const MAX_TICKS_PER_FRAME: u64 = 1 << 30;
        const MAX_FRAMES: u64 = 1 << 20;
        const MAX_BYTES: u64 = 1 << 40;

        let text = core::str::from_utf8(bytes).map_err(|_| LadderError::Manifest("not utf-8"))?;
        let mut lines = text.lines();
        if lines.next() != Some("MMSTREAM 1") {
            return Err(LadderError::Manifest("bad magic line"));
        }
        let mut title: Option<String> = None;
        let mut ticks_per_frame: Option<u64> = None;
        let mut sealed: Option<bool> = None;
        let mut rungs: Vec<RungInfo> = Vec::new();
        for line in lines {
            let mut words = line.split_whitespace();
            match words.next() {
                Some("title") => {
                    if title.is_some() {
                        return Err(LadderError::Manifest("duplicate title"));
                    }
                    let t = words.next().ok_or(LadderError::Manifest("missing title"))?;
                    if t.contains('/') {
                        return Err(LadderError::Manifest("title contains '/'"));
                    }
                    title = Some(t.to_string());
                }
                Some("ticks_per_frame") => {
                    if ticks_per_frame.is_some() {
                        return Err(LadderError::Manifest("duplicate ticks_per_frame"));
                    }
                    ticks_per_frame = Some(
                        words
                            .next()
                            .and_then(|w| w.parse::<u64>().ok())
                            .filter(|&t| t > 0 && t <= MAX_TICKS_PER_FRAME)
                            .ok_or(LadderError::Manifest("bad ticks_per_frame"))?,
                    );
                }
                Some("sealed") => {
                    if sealed.is_some() {
                        return Err(LadderError::Manifest("duplicate sealed flag"));
                    }
                    sealed = match words.next() {
                        Some("0") => Some(false),
                        Some("1") => Some(true),
                        _ => return Err(LadderError::Manifest("bad sealed flag")),
                    }
                }
                Some("rung") => {
                    let target = words
                        .next()
                        .and_then(|w| w.parse::<f64>().ok())
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .ok_or(LadderError::Manifest("bad rung target"))?;
                    if rungs
                        .last()
                        .is_some_and(|prev| prev.target_bits_per_frame >= target)
                    {
                        return Err(LadderError::Manifest("rung targets not ascending"));
                    }
                    rungs.push(RungInfo {
                        target_bits_per_frame: target,
                        segments: Vec::new(),
                    });
                }
                Some("seg") => {
                    let rung = rungs
                        .last_mut()
                        .ok_or(LadderError::Manifest("seg before rung"))?;
                    let name = words
                        .next()
                        .ok_or(LadderError::Manifest("seg missing name"))?
                        .to_string();
                    let mut num = |what, max: u64| {
                        words
                            .next()
                            .and_then(|w| w.parse::<u64>().ok())
                            .filter(|&v| v >= 1 && v <= max)
                            .ok_or(LadderError::Manifest(what))
                    };
                    let bytes = num("bad seg bytes", MAX_BYTES)? as usize;
                    let frames = num("bad seg frames", MAX_FRAMES)? as usize;
                    let nonce = words
                        .next()
                        .and_then(|w| w.parse::<u64>().ok())
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or(LadderError::Manifest("bad seg nonce"))?;
                    rung.segments.push(SegmentEntry {
                        name,
                        bytes,
                        frames,
                        nonce,
                    });
                }
                Some(_) => return Err(LadderError::Manifest("unknown directive")),
                None => {} // blank line
            }
            if words.next().is_some() {
                return Err(LadderError::Manifest("trailing tokens"));
            }
        }
        let title = title
            .filter(|t| !t.is_empty())
            .ok_or(LadderError::Manifest("missing title"))?;
        let ticks_per_frame = ticks_per_frame.ok_or(LadderError::Manifest("missing tpf"))?;
        let sealed = sealed.ok_or(LadderError::Manifest("missing sealed flag"))?;
        if rungs.is_empty() {
            return Err(LadderError::Manifest("no rungs"));
        }
        let n = rungs[0].segments.len();
        if n == 0 || rungs.iter().any(|r| r.segments.len() != n) {
            return Err(LadderError::Manifest("rung segment counts differ"));
        }
        Ok(Self {
            title,
            ticks_per_frame,
            sealed,
            rungs,
        })
    }
}

/// A built ladder: the manifest plus every segment's wire bytes,
/// `segments[rung][seg]` parallel to the manifest.
#[derive(Debug, Clone)]
pub struct Ladder {
    /// The manifest.
    pub manifest: Manifest,
    /// Muxed (possibly sealed) segment bytes per rung.
    pub segments: Vec<Vec<Vec<u8>>>,
}

impl Ladder {
    /// Total wire bytes across every rung and segment.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.segments
            .iter()
            .flat_map(|r| r.iter().map(Vec::len))
            .sum()
    }
}

/// Encodes `frames` at every rung of `config`, cutting closed-GOP
/// segments and muxing each to wire packets.
///
/// # Errors
///
/// Returns [`LadderError`] for bad targets/titles or encoder failures.
pub fn encode_ladder(
    title: &str,
    frames: &[Frame],
    config: &LadderConfig,
) -> Result<Ladder, LadderError> {
    if title.is_empty() || title.split_whitespace().count() != 1 || title.contains('/') {
        return Err(LadderError::BadTitle);
    }
    let targets = &config.targets_bits_per_frame;
    if targets.is_empty()
        || targets.iter().any(|t| !t.is_finite() || *t <= 0.0)
        || targets.windows(2).any(|w| w[0] >= w[1])
    {
        return Err(LadderError::BadTargets);
    }
    if config.ticks_per_frame == 0 {
        return Err(LadderError::ZeroTicksPerFrame);
    }
    if frames.is_empty() {
        return Err(LadderError::Encoder(EncoderError::Empty));
    }

    let mut rungs = Vec::with_capacity(targets.len());
    let mut segments = Vec::with_capacity(targets.len());
    for (ri, &target) in targets.iter().enumerate() {
        // Rate control alone cannot separate rungs on easy content (every
        // rung would drift to max quality), so each rung also gets a
        // quality band — the capped-quality + rate-target combination
        // real ladder encoders use. The controller may still drop to
        // quality 5 to hold the bit budget on hard content.
        let quality = if targets.len() == 1 {
            75u8
        } else {
            (35 + ri * 55 / (targets.len() - 1)) as u8
        };
        let encoder = Encoder::new(EncoderConfig {
            quality,
            gop: config.gop,
            search: config.search,
            search_range: config.search_range,
            rate: Some(RateConfig {
                max_quality: (quality + 8).min(95),
                ..RateConfig::for_target(target)
            }),
        })?;
        let mut entries = Vec::new();
        let mut wires = Vec::new();
        for (si, chunk) in frames.chunks(config.gop).enumerate() {
            let seq = encoder.encode(chunk)?;
            // Closed GOP by construction: the chunk is at most one GOP
            // long, so the encoder's boundary metadata must report
            // exactly one I-frame-led range.
            debug_assert_eq!(seq.gop_frame_ranges(), vec![0..chunk.len()]);
            let wire = mux_segment_wire(&seq, None);
            entries.push(SegmentEntry {
                name: format!("r{ri}_s{si}.ts"),
                bytes: wire.len(),
                frames: chunk.len(),
                nonce: ((ri as u32) << 16) | si as u32,
            });
            wires.push(wire);
        }
        rungs.push(RungInfo {
            target_bits_per_frame: target,
            segments: entries,
        });
        segments.push(wires);
    }
    Ok(Ladder {
        manifest: Manifest {
            title: title.to_string(),
            ticks_per_frame: config.ticks_per_frame,
            sealed: false,
            rungs,
        },
        segments,
    })
}

/// Seals every segment under the title's content key (XTEA-CTR, one
/// nonce per segment from the manifest). The manifest itself stays
/// clear — it names objects, the *content* is what §6 protects.
///
/// # Panics
///
/// Panics if `title_id` was not registered with the authority.
pub fn seal_ladder(ladder: &mut Ladder, authority: &LicenseAuthority, title_id: TitleId) {
    for (ri, rung) in ladder.segments.iter_mut().enumerate() {
        for (si, wire) in rung.iter_mut().enumerate() {
            let nonce = ladder.manifest.rungs[ri].segments[si].nonce;
            *wire = authority.encrypt_content(title_id, wire, nonce);
        }
    }
    ladder.manifest.sealed = true;
}

/// Publishes the manifest and every segment on a content server.
pub fn publish_ladder(server: &mut ContentServer, ladder: &Ladder) {
    let m = &ladder.manifest;
    server.publish(Manifest::manifest_object(&m.title), m.to_bytes());
    for (ri, rung) in ladder.segments.iter().enumerate() {
        for (si, wire) in rung.iter().enumerate() {
            server.publish(m.segment_object(ri, si), wire.clone());
        }
    }
}

/// Writes the ladder into a media filesystem (`/<title>/...`) — the
/// segment store backing a long-lived server.
///
/// # Errors
///
/// Propagates filesystem errors (e.g. out of space).
pub fn store_ladder(fs: &mut MediaFs, ladder: &Ladder) -> Result<(), LadderError> {
    let m = &ladder.manifest;
    fs.mkdir(&format!("/{}", m.title))?;
    fs.create(
        &format!("/{}", Manifest::manifest_object(&m.title)),
        &m.to_bytes(),
    )?;
    for (ri, rung) in ladder.segments.iter().enumerate() {
        for (si, wire) in rung.iter().enumerate() {
            fs.create(&format!("/{}", m.segment_object(ri, si)), wire)?;
        }
    }
    Ok(())
}

/// Loads a stored title from the filesystem and publishes it on the
/// server — the boot path of a segment server restarting over its store.
///
/// # Errors
///
/// Returns [`LadderError`] if the manifest is missing/malformed or a
/// segment read fails.
pub fn publish_from_fs(
    fs: &mut MediaFs,
    server: &mut ContentServer,
    title: &str,
) -> Result<Manifest, LadderError> {
    let manifest_path = format!("/{}", Manifest::manifest_object(title));
    let bytes = fs.read(&manifest_path)?;
    let manifest = Manifest::from_bytes(&bytes)?;
    server.publish(Manifest::manifest_object(title), bytes);
    for (ri, rung) in manifest.rungs.iter().enumerate() {
        for si in 0..rung.segments.len() {
            let object = manifest.segment_object(ri, si);
            server.publish(object.clone(), fs.read(&format!("/{object}"))?);
        }
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::demux_segment;
    use drm::license::License;
    use drm::Right;
    use video::synth::SequenceGen;

    fn source(n: usize) -> Vec<Frame> {
        SequenceGen::new(33).panning_sequence(48, 32, n, 1, 1)
    }

    fn small_config() -> LadderConfig {
        LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
            gop: 4,
            ..Default::default()
        }
    }

    #[test]
    fn ladder_shape_and_rates_are_ordered() {
        let ladder = encode_ladder("movie", &source(10), &small_config()).unwrap();
        let m = &ladder.manifest;
        assert_eq!(m.rungs.len(), 3);
        assert_eq!(m.segment_count(), 3); // 4 + 4 + 2 frames
        assert_eq!(m.rungs[0].segments[2].frames, 2);
        // Higher rungs cost at least as many wire bytes segment by
        // segment (tiny segments can tie: wire size quantizes to whole
        // 188-byte packets) and strictly more in total.
        for s in 0..m.segment_count() {
            let sizes: Vec<usize> = m.rungs.iter().map(|r| r.segments[s].bytes).collect();
            assert!(
                sizes.windows(2).all(|w| w[0] <= w[1]),
                "rung sizes descend at segment {s}: {sizes:?}"
            );
        }
        let totals: Vec<usize> = m
            .rungs
            .iter()
            .map(|r| r.segments.iter().map(|s| s.bytes).sum())
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] < w[1]),
            "rung totals not ascending: {totals:?}"
        );
    }

    #[test]
    fn every_segment_decodes_standalone() {
        let ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        for rung in &ladder.segments {
            for wire in rung {
                let seg = demux_segment(wire);
                assert!(!seg.report.loss_detected());
                let dec = video::decode(&seg.video_es.unwrap()).unwrap();
                assert!(!dec.frames.is_empty());
                assert_eq!(dec.kinds[0], video::FrameKind::Intra);
            }
        }
    }

    #[test]
    fn manifest_round_trips() {
        let ladder = encode_ladder("movie", &source(9), &small_config()).unwrap();
        let bytes = ladder.manifest.to_bytes();
        let back = Manifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, ladder.manifest);
    }

    #[test]
    fn malformed_manifests_rejected() {
        assert!(Manifest::from_bytes(b"").is_err());
        assert!(Manifest::from_bytes(b"MMSTREAM 2\n").is_err());
        assert!(Manifest::from_bytes(b"MMSTREAM 1\ntitle t\n").is_err());
        assert!(
            Manifest::from_bytes(b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\n").is_err()
        );
        assert!(Manifest::from_bytes(
            b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nseg a 1 1 0\n"
        )
        .is_err());
        assert_eq!(
            Manifest::from_bytes(
                b"MMSTREAM 1\ntitle t\nticks_per_frame 0\nsealed 0\nrung 100\nseg a 1 1 0\n"
            )
            .unwrap_err(),
            LadderError::Manifest("bad ticks_per_frame")
        );
    }

    #[test]
    fn hardened_manifest_parser_rejects_hostile_bytes() {
        let ok = b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 0\n";
        assert!(Manifest::from_bytes(ok).is_ok());
        let cases: &[(&[u8], &str)] = &[
            (
                b"MMSTREAM 1\ntitle t\ntitle u\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 0\n",
                "duplicate title",
            ),
            (
                b"MMSTREAM 1\ntitle a/b\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 0\n",
                "title contains '/'",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0 junk\nrung 100\nseg a 1 1 0\n",
                "trailing tokens",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nrung 50\nseg a 1 1 0\nseg b 1 1 0\n",
                "rung targets not ascending",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 1 4294967296\n",
                "nonce overflowing u32",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 1 18446744073709551615 0\n",
                "frames that would overflow playout math",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 18446744073709551615\nsealed 0\nrung 100\nseg a 1 1 0\n",
                "oversized ticks_per_frame",
            ),
            (
                b"MMSTREAM 1\ntitle t\nticks_per_frame 10\nsealed 0\nrung 100\nseg a 0 1 0\n",
                "zero-byte segment",
            ),
        ];
        for (bytes, what) in cases {
            assert!(
                Manifest::from_bytes(bytes).is_err(),
                "parser accepted {what}"
            );
        }
        // Truncation at every byte boundary errors cleanly, never panics.
        for cut in 0..ok.len() {
            let _ = Manifest::from_bytes(&ok[..cut]);
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let frames = source(4);
        let mut cfg = small_config();
        cfg.targets_bits_per_frame = vec![5_000.0, 5_000.0];
        assert_eq!(
            encode_ladder("t", &frames, &cfg).unwrap_err(),
            LadderError::BadTargets
        );
        assert_eq!(
            encode_ladder("two words", &frames, &small_config()).unwrap_err(),
            LadderError::BadTitle
        );
        assert_eq!(
            encode_ladder("a/b", &frames, &small_config()).unwrap_err(),
            LadderError::BadTitle
        );
        let zero_tpf = LadderConfig {
            ticks_per_frame: 0,
            ..small_config()
        };
        assert_eq!(
            encode_ladder("t", &frames, &zero_tpf).unwrap_err(),
            LadderError::ZeroTicksPerFrame
        );
    }

    #[test]
    fn sealing_is_reversible_with_the_license_key() {
        let mut authority = LicenseAuthority::new(b"studio".to_vec());
        let title_id = TitleId(9);
        authority.register_title(title_id);
        let mut ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        let clear = ladder.segments[0][0].clone();
        seal_ladder(&mut ladder, &authority, title_id);
        assert!(ladder.manifest.sealed);
        assert_ne!(ladder.segments[0][0], clear);
        assert_eq!(ladder.segments[0][0].len(), clear.len());
        // A session unseals via the license's content key.
        let sealed_license = authority.issue(title_id, vec![Right::Play]);
        let license = License::unseal(&sealed_license, authority.verification_key()).unwrap();
        let nonce = ladder.manifest.rungs[0].segments[0].nonce;
        let back =
            drm::cipher::XteaCtr::new(&license.content_key, nonce).applied(&ladder.segments[0][0]);
        assert_eq!(back, clear);
    }

    #[test]
    fn store_and_republish_from_mediafs() {
        let ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        let mut fs = MediaFs::new(4096, 512, mediafs::fs::AllocPolicy::FirstFit);
        store_ladder(&mut fs, &ladder).unwrap();
        let mut server = ContentServer::new();
        let manifest = publish_from_fs(&mut fs, &mut server, "movie").unwrap();
        assert_eq!(manifest, ladder.manifest);
        assert_eq!(
            server.len(),
            1 + manifest.rungs.len() * manifest.segment_count()
        );
        // Segment bytes survive the store -> publish path exactly.
        let names = server.names();
        assert!(names.contains(&"movie/manifest".to_string()));
        assert!(names.contains(&"movie/r2_s1.ts".to_string()));
    }

    #[test]
    fn required_rate_reflects_segment_size() {
        let ladder = encode_ladder("movie", &source(8), &small_config()).unwrap();
        let m = &ladder.manifest;
        let low = m.rungs[0].required_bits_per_tick(0, m.ticks_per_frame);
        let high = m.rungs[2].required_bits_per_tick(0, m.ticks_per_frame);
        assert!(low > 0.0 && high > low);
    }
}
